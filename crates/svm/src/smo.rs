//! Sequential Minimal Optimization for C-SVC on precomputed kernels.
//!
//! Solves the SVM dual
//!
//! ```text
//! max_alpha  sum_i alpha_i - 1/2 sum_ij alpha_i alpha_j y_i y_j K_ij
//! s.t.       0 <= alpha_i <= C,   sum_i alpha_i y_i = 0
//! ```
//!
//! with Platt's SMO: pick a KKT-violating pair, solve the 2-variable
//! subproblem analytically, clip to the box, repeat. The second index is
//! chosen by the max-|E_i - E_j| heuristic with a seeded random fallback,
//! and an error cache keeps each update O(n).

use crate::kernel::KernelSource;
use qk_obs::{Journal, Obs};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SmoParams {
    /// Box constraint (regularization). The paper sweeps `C in [0.01, 4]`.
    pub c: f64,
    /// KKT violation tolerance; the paper uses `1e-3`.
    pub tol: f64,
    /// Maximum full passes over the data without progress before stopping.
    pub max_passes: usize,
    /// Hard cap on total passes (safety valve for degenerate kernels).
    pub max_total_passes: usize,
    /// Seed for the random second-choice heuristic.
    pub seed: u64,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams {
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_total_passes: 2_000,
            seed: 0xD1CE,
        }
    }
}

impl SmoParams {
    /// Default parameters at a given `C`.
    pub fn with_c(c: f64) -> Self {
        SmoParams {
            c,
            ..Self::default()
        }
    }
}

/// A trained support-vector classifier over a precomputed kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedSvm {
    /// Dual coefficients, one per training point.
    pub alphas: Vec<f64>,
    /// Bias term `b` in `f(x) = sum_i alpha_i y_i k(x_i, x) + b`.
    pub bias: f64,
    /// Training labels (`+1`/`-1`), retained for the decision function.
    pub labels: Vec<f64>,
    /// Number of optimization passes performed.
    pub passes: usize,
}

impl TrainedSvm {
    /// Indices with non-zero dual coefficient.
    pub fn support_indices(&self) -> Vec<usize> {
        self.alphas
            .iter()
            .enumerate()
            .filter(|(_, a)| **a > 1e-12)
            .map(|(i, _)| i)
            .collect()
    }

    /// Decision value for a point given its kernel row against the full
    /// training set (`row[j] = k(x, x_j)`).
    pub fn decision_value(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.alphas.len());
        let mut acc = self.bias;
        for ((a, y), k) in self.alphas.iter().zip(&self.labels).zip(row) {
            if *a > 1e-12 {
                acc += a * y * k;
            }
        }
        acc
    }

    /// Decision values for many kernel rows.
    pub fn decision_values<'a>(&self, rows: impl Iterator<Item = &'a [f64]>) -> Vec<f64> {
        rows.map(|r| self.decision_value(r)).collect()
    }

    /// Decision values over a precomputed test-against-train block,
    /// borrowing each kernel row in place — the batched-inference path:
    /// the serving layer evaluates a whole micro-batch against one block
    /// without copying rows out.
    pub fn decision_values_block(&self, block: &crate::kernel::KernelBlock) -> Vec<f64> {
        (0..block.rows())
            .map(|i| self.decision_value(block.row(i)))
            .collect()
    }

    /// Class prediction (`+1` / `-1`).
    pub fn predict(&self, row: &[f64]) -> f64 {
        if self.decision_value(row) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// Trains a C-SVC on a precomputed kernel.
///
/// Generic over [`KernelSource`], so a dense [`crate::KernelMatrix`] and
/// an externally assembled view (e.g. `qk-gram`'s `TiledKernel`) train
/// identically — no dense copy is made of non-`KernelMatrix` sources.
///
/// # Panics
/// Panics if labels are not `+1`/`-1`, sizes mismatch, both classes are
/// not present, or the hyperparameters are degenerate (`c` not positive
/// and finite, `tol` not finite).
pub fn train_svc<K: KernelSource + ?Sized>(
    kernel: &K,
    labels: &[f64],
    params: &SmoParams,
) -> TrainedSvm {
    train_impl(kernel, labels, params, None)
}

/// [`train_svc`] with observability: SMO registers `svm.*` counters and
/// spans in `obs`, and (when a journal is given) records start / pass /
/// done milestones. Instrumentation only observes the solver — the
/// trained model is bit-identical to an unobserved [`train_svc`] run.
pub fn train_svc_observed<K: KernelSource + ?Sized>(
    kernel: &K,
    labels: &[f64],
    params: &SmoParams,
    obs: &Obs,
    journal: Option<&Journal>,
) -> TrainedSvm {
    train_impl(kernel, labels, params, Some((obs, journal)))
}

/// Validates the training problem up front with clear panic messages.
///
/// Shared by [`train_svc`] and the crash-safe `trainer` module so both
/// entry points reject the same degenerate inputs. Non-finite
/// hyperparameters are rejected explicitly: a NaN `tol` makes every KKT
/// comparison false, so the solver would silently spin to
/// `max_total_passes` doing nothing.
pub(crate) fn validate_inputs(n: usize, labels: &[f64], params: &SmoParams) {
    assert_eq!(labels.len(), n, "label count must match kernel order");
    assert!(n >= 2, "need at least two training points");
    assert!(
        labels.iter().all(|y| *y == 1.0 || *y == -1.0),
        "labels must be +1 or -1"
    );
    assert!(
        labels.iter().any(|y| *y > 0.0) && labels.iter().any(|y| *y < 0.0),
        "both classes must be present"
    );
    assert!(
        params.c > 0.0 && params.c.is_finite(),
        "C must be positive and finite, got {}",
        params.c
    );
    assert!(
        params.tol.is_finite(),
        "tol must be finite, got {} (a NaN tol makes the KKT check vacuously pass)",
        params.tol
    );
}

/// Resumable SMO solver state: everything the pass loop mutates.
///
/// [`train_svc`] drives one of these from `fresh` to convergence in a
/// single call; the crash-safe `trainer` module persists and restores it
/// across process deaths. Bitwise reproducibility hinges on this being
/// the *complete* loop state — alphas, bias, the error cache, both pass
/// counters, and the second-choice rng.
#[derive(Debug, Clone)]
pub(crate) struct SmoState {
    pub alphas: Vec<f64>,
    pub bias: f64,
    /// Error cache: `E_i = f(x_i) - y_i`.
    pub errors: Vec<f64>,
    pub passes_without_progress: usize,
    pub total_passes: usize,
    pub rng: ChaCha8Rng,
}

impl SmoState {
    /// Cold-start state: all alphas zero, so `f = 0` and `E_i = -y_i`.
    pub(crate) fn fresh(labels: &[f64], seed: u64) -> SmoState {
        SmoState {
            alphas: vec![0.0f64; labels.len()],
            bias: 0.0,
            errors: labels.iter().map(|y| -y).collect(),
            passes_without_progress: 0,
            total_passes: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Whether another pass should run under the configured caps.
    pub(crate) fn should_continue(&self, params: &SmoParams) -> bool {
        self.passes_without_progress < params.max_passes
            && self.total_passes < params.max_total_passes
    }

    /// Advances the pass counters after a completed pass.
    pub(crate) fn record_pass(&mut self, changed: usize) {
        self.total_passes += 1;
        if changed == 0 {
            self.passes_without_progress += 1;
        } else {
            self.passes_without_progress = 0;
        }
    }

    /// Finishes training, consuming the state into a model.
    pub(crate) fn into_model(self, labels: &[f64]) -> TrainedSvm {
        TrainedSvm {
            alphas: self.alphas,
            bias: self.bias,
            labels: labels.to_vec(),
            passes: self.total_passes,
        }
    }
}

/// Runs one full SMO pass over the data, fetching kernel rows through
/// `rows(i, j)`.
///
/// This is *the* pass loop — [`train_svc`] closes over direct
/// [`KernelSource::row`] reads (infallible), while the crash-safe
/// trainer closes over its budgeted row cache (fallible loads, chaos
/// gates). Both paths execute identical float operations and identical
/// rng draws, which is what makes a resumed training run bitwise equal
/// to an uninterrupted one.
///
/// Returns the number of successful alpha updates, or the first row
/// fetch error. Note `rows` is only consulted after the KKT check and
/// pair selection, so the rng stream never depends on the fetch path.
pub(crate) fn pass_over<R, E>(
    labels: &[f64],
    c: f64,
    tol: f64,
    st: &mut SmoState,
    mut rows: impl FnMut(usize, usize) -> Result<(R, R), E>,
) -> Result<usize, E>
where
    R: std::ops::Deref<Target = [f64]>,
{
    let n = labels.len();
    let mut changed = 0usize;
    for i in 0..n {
        let ei = st.errors[i];
        let yi = labels[i];
        let r = ei * yi;
        // KKT check: violated if (r < -tol and alpha < C) or
        // (r > tol and alpha > 0).
        if !((r < -tol && st.alphas[i] < c) || (r > tol && st.alphas[i] > 0.0)) {
            continue;
        }
        // Second-choice heuristic: maximize |E_i - E_j| over non-bound
        // points; fall back to a random other index.
        let j = select_second(i, &st.errors, &st.alphas, c, &mut st.rng);
        if i == j {
            // Degenerate fallback (n < 2 never reaches here in
            // practice); take_step would reject the pair anyway.
            continue;
        }
        let (ki, kj) = rows(i, j)?;
        if take_step_rows(
            labels,
            &mut st.alphas,
            &mut st.bias,
            &mut st.errors,
            i,
            j,
            c,
            &ki,
            &kj,
        ) {
            changed += 1;
        }
    }
    Ok(changed)
}

fn train_impl<K: KernelSource + ?Sized>(
    kernel: &K,
    labels: &[f64],
    params: &SmoParams,
    hooks: Option<(&Obs, Option<&Journal>)>,
) -> TrainedSvm {
    let n = kernel.order();
    validate_inputs(n, labels, params);

    let _train_span = hooks.map(|(obs, _)| obs.span("smo_train"));
    let counters = hooks.map(|(obs, _)| {
        (
            obs.counter("svm.smo_passes"),
            obs.counter("svm.smo_updates"),
        )
    });
    if let Some((_, Some(journal))) = hooks {
        journal
            .event("smo_start")
            .field_u64("n", n as u64)
            .field_u64("seed", params.seed)
            .log();
    }

    let mut st = SmoState::fresh(labels, params.seed);

    while st.should_continue(params) {
        let _pass_span = hooks.map(|(obs, _)| obs.span("pass"));
        let changed = match pass_over(labels, params.c, params.tol, &mut st, |i, j| {
            Ok::<_, std::convert::Infallible>((kernel.row(i), kernel.row(j)))
        }) {
            Ok(changed) => changed,
            Err(never) => match never {},
        };
        st.record_pass(changed);
        if let Some((passes, updates)) = &counters {
            passes.inc();
            updates.add(changed as u64);
        }
        if let Some((_, Some(journal))) = hooks {
            journal
                .event("smo_pass")
                .field_u64("pass", st.total_passes as u64)
                .field_u64("changed", changed as u64)
                .log();
        }
    }

    let model = st.into_model(labels);
    if let Some((_, Some(journal))) = hooks {
        journal
            .event("smo_done")
            .field_u64("passes", model.passes as u64)
            .field_u64("support_vectors", model.support_indices().len() as u64)
            .log();
        if let Err(e) = journal.flush() {
            eprintln!("qk-svm: journal flush failed: {e}");
        }
    }
    model
}

/// Chooses the second working-set index.
fn select_second(i: usize, errors: &[f64], alphas: &[f64], c: f64, rng: &mut ChaCha8Rng) -> usize {
    let n = errors.len();
    let ei = errors[i];
    let mut best = None;
    let mut best_gap = 0.0f64;
    for j in 0..n {
        if j == i {
            continue;
        }
        // Prefer non-bound points: their errors are kept exact.
        if alphas[j] <= 1e-12 || alphas[j] >= c - 1e-12 {
            continue;
        }
        let gap = (ei - errors[j]).abs();
        if gap > best_gap {
            best_gap = gap;
            best = Some(j);
        }
    }
    best.unwrap_or_else(|| random_other_index(i, n, rng))
}

/// Uniform draw of `j != i` from `0..n`.
///
/// Draws from the `n - 1` admissible values and shifts the draws at or
/// above `i` up by one: `[0, n-1)` maps bijectively onto `[0, n) \ {i}`,
/// so every `j != i` has probability exactly `1/(n-1)` (no
/// rejection-resampling and no modulo bias; see the distribution test
/// below). Degenerate problems with `n < 2` have no admissible second
/// index, so `i` itself is returned and the caller's `take_step`
/// rejects the `i == j` pair as unproductive.
fn random_other_index(i: usize, n: usize, rng: &mut ChaCha8Rng) -> usize {
    if n < 2 {
        return i;
    }
    let j = rng.gen_range(0..n - 1);
    if j >= i {
        j + 1
    } else {
        j
    }
}

/// Attempts the analytic two-variable update; returns `true` on progress.
///
/// Works on prefetched kernel rows: `ki[k] = K[i][k]`, `kj[k] = K[j][k]`.
/// Since a row slice and an `entry` call read the same backing values,
/// this is bit-for-bit the classic entrywise formulation — but it lets
/// the crash-safe trainer serve both the 2x2 subproblem and the O(n)
/// error-cache refresh from a single pair of cached rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn take_step_rows(
    labels: &[f64],
    alphas: &mut [f64],
    bias: &mut f64,
    errors: &mut [f64],
    i: usize,
    j: usize,
    c: f64,
    ki: &[f64],
    kj: &[f64],
) -> bool {
    if i == j {
        return false;
    }
    let (yi, yj) = (labels[i], labels[j]);
    let (ai_old, aj_old) = (alphas[i], alphas[j]);
    let (ei, ej) = (errors[i], errors[j]);

    // Feasible segment for alpha_j.
    let (lo, hi) = if yi != yj {
        ((aj_old - ai_old).max(0.0), (c + aj_old - ai_old).min(c))
    } else {
        ((ai_old + aj_old - c).max(0.0), (ai_old + aj_old).min(c))
    };
    if hi - lo < 1e-12 {
        return false;
    }

    let kii = ki[i];
    let kjj = kj[j];
    let kij = ki[j];
    let eta = kii + kjj - 2.0 * kij;
    if eta <= 1e-12 {
        // Non-positive curvature (can happen with degenerate kernels):
        // skip rather than evaluating the objective at the segment ends.
        return false;
    }

    let mut aj_new = aj_old + yj * (ei - ej) / eta;
    aj_new = aj_new.clamp(lo, hi);
    if (aj_new - aj_old).abs() < 1e-7 * (aj_new + aj_old + 1e-7) {
        return false;
    }
    // Clamp to the box; exact in real arithmetic, guards float drift.
    let ai_new = (ai_old + yi * yj * (aj_old - aj_new)).clamp(0.0, c);

    // Bias update (Platt's rules).
    let b1 = *bias - ei - yi * (ai_new - ai_old) * kii - yj * (aj_new - aj_old) * kij;
    let b2 = *bias - ej - yi * (ai_new - ai_old) * kij - yj * (aj_new - aj_old) * kjj;
    let new_bias = if ai_new > 1e-12 && ai_new < c - 1e-12 {
        b1
    } else if aj_new > 1e-12 && aj_new < c - 1e-12 {
        b2
    } else {
        (b1 + b2) / 2.0
    };

    // Error cache refresh: O(n) incremental update.
    let di = yi * (ai_new - ai_old);
    let dj = yj * (aj_new - aj_old);
    let db = new_bias - *bias;
    for ((e, kik), kjk) in errors.iter_mut().zip(ki).zip(kj) {
        *e += di * kik + dj * kjk + db;
    }

    alphas[i] = ai_new;
    alphas[j] = aj_new;
    *bias = new_bias;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelMatrix;

    #[test]
    fn decision_values_block_matches_per_row() {
        let svm = TrainedSvm {
            alphas: vec![0.5, 0.0, 1.2],
            bias: -0.3,
            labels: vec![1.0, -1.0, -1.0],
            passes: 1,
        };
        let block = crate::kernel::KernelBlock::from_fn(4, 3, |i, j| {
            1.0 / (1.0 + (i as f64 - j as f64).abs())
        });
        let batched = svm.decision_values_block(&block);
        assert_eq!(batched.len(), 4);
        for (i, &d) in batched.iter().enumerate() {
            assert_eq!(d, svm.decision_value(block.row(i)), "row {i}");
        }
    }

    /// The fallback draw hits every `j != i` with frequency `1/(n-1)`.
    ///
    /// Pins the distribution over small `n` with a fixed seed: for each
    /// `i`, 20 000 draws must put every admissible index within 5% of
    /// the uniform share absolutely, and must never produce `j == i`.
    #[test]
    fn second_index_fallback_is_uniform() {
        const DRAWS: usize = 20_000;
        for n in 2..=6usize {
            for i in 0..n {
                let mut rng = ChaCha8Rng::seed_from_u64(42 + (n * 10 + i) as u64);
                let mut counts = vec![0usize; n];
                for _ in 0..DRAWS {
                    let j = random_other_index(i, n, &mut rng);
                    assert_ne!(j, i, "fallback must avoid the first index (n={n}, i={i})");
                    counts[j] += 1;
                }
                assert_eq!(counts[i], 0);
                let expected = DRAWS as f64 / (n - 1) as f64;
                for (j, &c) in counts.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let dev = (c as f64 - expected).abs() / expected;
                    assert!(
                        dev < 0.05,
                        "n={n} i={i} j={j}: count {c} deviates {:.1}% from uniform {expected}",
                        dev * 100.0
                    );
                }
            }
        }
    }

    /// Degenerate single-point problems must not panic: with no
    /// admissible second index the draw returns `i` and `take_step`
    /// rejects the pair.
    #[test]
    fn second_index_fallback_degenerate_n1() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(random_other_index(0, 1, &mut rng), 0);
        assert_eq!(random_other_index(0, 0, &mut rng), 0);
    }

    /// Linear kernel on explicit points: k(x, y) = <x, y>.
    fn linear_kernel(points: &[Vec<f64>]) -> KernelMatrix {
        KernelMatrix::from_fn(points.len(), |i, j| {
            points[i].iter().zip(&points[j]).map(|(a, b)| a * b).sum()
        })
    }

    #[test]
    fn separates_trivial_1d() {
        let pts: Vec<Vec<f64>> = vec![vec![-2.0], vec![-1.5], vec![1.5], vec![2.0]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let k = linear_kernel(&pts);
        let model = train_svc(&k, &y, &SmoParams::with_c(1.0));
        for (i, &yi) in y.iter().enumerate() {
            assert_eq!(model.predict(k.row(i)), yi, "point {i}");
        }
    }

    #[test]
    fn separates_2d_margin() {
        let pts: Vec<Vec<f64>> = vec![
            vec![1.0, 1.0],
            vec![2.0, 1.5],
            vec![1.5, 2.0],
            vec![-1.0, -1.0],
            vec![-2.0, -1.5],
            vec![-1.5, -0.5],
        ];
        let y = vec![1.0, 1.0, 1.0, -1.0, -1.0, -1.0];
        let k = linear_kernel(&pts);
        let model = train_svc(&k, &y, &SmoParams::with_c(10.0));
        for (i, &yi) in y.iter().enumerate() {
            assert_eq!(model.predict(k.row(i)), yi, "point {i}");
        }
        // Support vectors exist and duals respect the box.
        assert!(!model.support_indices().is_empty());
        assert!(model
            .alphas
            .iter()
            .all(|&a| (0.0..=10.0 + 1e-9).contains(&a)));
    }

    #[test]
    fn dual_constraint_holds() {
        let pts: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i as f64) - 4.5, ((i * 7) % 10) as f64 / 3.0])
            .collect();
        let y: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let k = linear_kernel(&pts);
        let model = train_svc(&k, &y, &SmoParams::with_c(2.0));
        let balance: f64 = model.alphas.iter().zip(&y).map(|(a, yi)| a * yi).sum();
        assert!(balance.abs() < 1e-8, "sum alpha_i y_i = {balance}");
    }

    #[test]
    fn xor_needs_nonlinear_kernel() {
        // XOR points: linear kernel fails, RBF-style kernel succeeds.
        let pts: Vec<Vec<f64>> = vec![
            vec![1.0, 1.0],
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![-1.0, 1.0],
        ];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let rbf = KernelMatrix::from_fn(4, |i, j| {
            let d2: f64 = pts[i]
                .iter()
                .zip(&pts[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (-0.5 * d2).exp()
        });
        let model = train_svc(&rbf, &y, &SmoParams::with_c(10.0));
        for (i, &yi) in y.iter().enumerate() {
            assert_eq!(model.predict(rbf.row(i)), yi, "xor point {i}");
        }
    }

    #[test]
    fn small_c_bounds_alphas() {
        let pts: Vec<Vec<f64>> = vec![vec![-1.0], vec![-0.5], vec![0.5], vec![1.0]];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let k = linear_kernel(&pts);
        let c = 0.01;
        let model = train_svc(&k, &y, &SmoParams::with_c(c));
        assert!(model.alphas.iter().all(|&a| a <= c + 1e-12));
    }

    #[test]
    fn noisy_data_terminates() {
        // Overlapping classes: SMO must terminate via the pass caps.
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![((i * 37) % 13) as f64 / 6.0 - 1.0])
            .collect();
        let y: Vec<f64> = (0..30)
            .map(|i| if (i * 17) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let k = linear_kernel(&pts);
        let model = train_svc(&k, &y, &SmoParams::with_c(1.0));
        assert!(model.passes <= SmoParams::default().max_total_passes);
        assert!(model.alphas.iter().all(|a| a.is_finite()));
        assert!(model.bias.is_finite());
    }

    #[test]
    fn decision_values_batch() {
        let pts: Vec<Vec<f64>> = vec![vec![-1.0], vec![1.0]];
        let y = vec![-1.0, 1.0];
        let k = linear_kernel(&pts);
        let model = train_svc(&k, &y, &SmoParams::with_c(5.0));
        let rows: Vec<&[f64]> = (0..2).map(|i| k.row(i)).collect();
        let dv = model.decision_values(rows.into_iter());
        assert!(dv[0] < 0.0 && dv[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let k = KernelMatrix::from_fn(2, |i, j| if i == j { 1.0 } else { 0.0 });
        train_svc(&k, &[1.0, 1.0], &SmoParams::default());
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn bad_labels_panic() {
        let k = KernelMatrix::from_fn(2, |i, j| if i == j { 1.0 } else { 0.0 });
        train_svc(&k, &[1.0, 0.0], &SmoParams::default());
    }

    /// A NaN `tol` makes every KKT comparison false, so without the
    /// up-front validation the solver silently spins to
    /// `max_total_passes` while updating nothing. It must panic instead.
    #[test]
    #[should_panic(expected = "tol must be finite")]
    fn nan_tol_panics() {
        let k = linear_kernel(&[vec![-1.0], vec![1.0]]);
        let params = SmoParams {
            tol: f64::NAN,
            ..SmoParams::default()
        };
        train_svc(&k, &[-1.0, 1.0], &params);
    }

    #[test]
    #[should_panic(expected = "tol must be finite")]
    fn infinite_tol_panics() {
        let k = linear_kernel(&[vec![-1.0], vec![1.0]]);
        let params = SmoParams {
            tol: f64::INFINITY,
            ..SmoParams::default()
        };
        train_svc(&k, &[-1.0, 1.0], &params);
    }

    #[test]
    #[should_panic(expected = "C must be positive and finite")]
    fn nan_c_panics() {
        let k = linear_kernel(&[vec![-1.0], vec![1.0]]);
        train_svc(&k, &[-1.0, 1.0], &SmoParams::with_c(f64::NAN));
    }

    #[test]
    #[should_panic(expected = "C must be positive and finite")]
    fn infinite_c_panics() {
        let k = linear_kernel(&[vec![-1.0], vec![1.0]]);
        train_svc(&k, &[-1.0, 1.0], &SmoParams::with_c(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "C must be positive and finite")]
    fn nonpositive_c_panics() {
        let k = linear_kernel(&[vec![-1.0], vec![1.0]]);
        train_svc(&k, &[-1.0, 1.0], &SmoParams::with_c(0.0));
    }

    /// Instrumentation must observe the solver, never steer it: the
    /// observed path trains a bit-identical model, and the milestone
    /// counters land in the shared registry.
    #[test]
    fn observed_training_is_bitwise_identical() {
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64) - 5.5, ((i * 3) % 7) as f64 / 2.0])
            .collect();
        let y: Vec<f64> = (0..12)
            .map(|i| if (i * 5) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let k = linear_kernel(&pts);
        let params = SmoParams::with_c(1.5);
        let plain = train_svc(&k, &y, &params);
        let obs = Obs::new();
        let observed = train_svc_observed(&k, &y, &params, &obs, None);
        assert_eq!(plain.alphas, observed.alphas);
        assert_eq!(plain.bias.to_bits(), observed.bias.to_bits());
        assert_eq!(plain.passes, observed.passes);
        let snap = obs.registry_snapshot();
        assert_eq!(snap.counters["svm.smo_passes"], plain.passes as u64);
        assert!(snap.counters.contains_key("svm.smo_updates"));
    }
}
