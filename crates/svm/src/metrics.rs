//! Classification metrics: accuracy, precision, recall, ROC and AUC.
//!
//! AUC is computed as the Mann-Whitney U statistic with average ranks for
//! ties — numerically identical to the trapezoidal area under the ROC
//! curve and robust to tied decision values.

use serde::{Deserialize, Serialize};

/// The standard metric bundle reported in the paper's Tables II/III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Area under the ROC curve.
    pub auc: f64,
    /// Recall (true positive rate) of the positive class.
    pub recall: f64,
    /// Precision of the positive class.
    pub precision: f64,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl Metrics {
    /// Computes all metrics from decision values and `+1`/`-1` labels.
    /// Thresholded metrics use a zero threshold on the decision values.
    pub fn compute(scores: &[f64], labels: &[f64]) -> Metrics {
        Metrics {
            auc: roc_auc(scores, labels),
            recall: recall(scores, labels, 0.0),
            precision: precision(scores, labels, 0.0),
            accuracy: accuracy(scores, labels, 0.0),
        }
    }

    /// Averages a set of metric bundles (the paper averages 6 runs).
    pub fn mean(runs: &[Metrics]) -> Metrics {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        Metrics {
            auc: runs.iter().map(|m| m.auc).sum::<f64>() / n,
            recall: runs.iter().map(|m| m.recall).sum::<f64>() / n,
            precision: runs.iter().map(|m| m.precision).sum::<f64>() / n,
            accuracy: runs.iter().map(|m| m.accuracy).sum::<f64>() / n,
        }
    }
}

/// Counts of the confusion matrix at a threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Builds the confusion matrix predicting positive when `score > threshold`.
pub fn confusion(scores: &[f64], labels: &[f64], threshold: f64) -> Confusion {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let mut c = Confusion::default();
    for (s, y) in scores.iter().zip(labels) {
        let predicted_positive = *s > threshold;
        let actually_positive = *y > 0.0;
        match (predicted_positive, actually_positive) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

/// Accuracy at a threshold.
pub fn accuracy(scores: &[f64], labels: &[f64], threshold: f64) -> f64 {
    let c = confusion(scores, labels, threshold);
    let total = c.tp + c.fp + c.tn + c.fn_;
    if total == 0 {
        return 0.0;
    }
    (c.tp + c.tn) as f64 / total as f64
}

/// Precision of the positive class at a threshold (1.0 when nothing is
/// predicted positive, matching scikit-learn's zero-division carve-out
/// being avoided: we return 0.0 in that degenerate case).
pub fn precision(scores: &[f64], labels: &[f64], threshold: f64) -> f64 {
    let c = confusion(scores, labels, threshold);
    if c.tp + c.fp == 0 {
        return 0.0;
    }
    c.tp as f64 / (c.tp + c.fp) as f64
}

/// Recall (TPR) of the positive class at a threshold.
pub fn recall(scores: &[f64], labels: &[f64], threshold: f64) -> f64 {
    let c = confusion(scores, labels, threshold);
    if c.tp + c.fn_ == 0 {
        return 0.0;
    }
    c.tp as f64 / (c.tp + c.fn_) as f64
}

/// Area under the ROC curve via the rank statistic.
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let n = scores.len();
    let n_pos = labels.iter().filter(|y| **y > 0.0).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Average ranks with tie handling.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; tied block [i, j] gets the average rank.
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] > 0.0 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// A point on the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False positive rate.
    pub fpr: f64,
    /// True positive rate.
    pub tpr: f64,
    /// The threshold producing this point.
    pub threshold: f64,
}

/// Full ROC curve, sorted by increasing FPR (thresholds descending).
pub fn roc_curve(scores: &[f64], labels: &[f64]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|y| **y > 0.0).count();
    let n_neg = labels.len() - n_pos;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let mut curve = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let t = scores[order[i]];
        while i < order.len() && scores[order[i]] == t {
            if labels[order[i]] > 0.0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(RocPoint {
            fpr: if n_neg == 0 {
                0.0
            } else {
                fp as f64 / n_neg as f64
            },
            tpr: if n_pos == 0 {
                0.0
            } else {
                tp as f64 / n_pos as f64
            },
            threshold: t,
        });
    }
    curve
}

/// F1 score (harmonic mean of precision and recall) at a threshold.
pub fn f1_score(scores: &[f64], labels: &[f64], threshold: f64) -> f64 {
    let p = precision(scores, labels, threshold);
    let r = recall(scores, labels, threshold);
    if p + r == 0.0 {
        return 0.0;
    }
    2.0 * p * r / (p + r)
}

/// Balanced accuracy: mean of TPR and TNR, insensitive to class skew —
/// relevant for the Elliptic data's ~1:9 illicit/licit imbalance before
/// the paper's balanced down-selection.
pub fn balanced_accuracy(scores: &[f64], labels: &[f64], threshold: f64) -> f64 {
    let c = confusion(scores, labels, threshold);
    let tpr = if c.tp + c.fn_ == 0 {
        0.0
    } else {
        c.tp as f64 / (c.tp + c.fn_) as f64
    };
    let tnr = if c.tn + c.fp == 0 {
        0.0
    } else {
        c.tn as f64 / (c.tn + c.fp) as f64
    };
    (tpr + tnr) / 2.0
}

/// Matthews correlation coefficient at a threshold; in `[-1, 1]`, 0 for
/// uninformative predictions. Returns 0 when any marginal is empty.
pub fn matthews_corrcoef(scores: &[f64], labels: &[f64], threshold: f64) -> f64 {
    let c = confusion(scores, labels, threshold);
    let (tp, fp, tn, fn_) = (c.tp as f64, c.fp as f64, c.tn as f64, c.fn_ as f64);
    let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (tp * tn - fp * fn_) / denom
}

/// A point on the precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall at this threshold.
    pub recall: f64,
    /// Precision at this threshold.
    pub precision: f64,
    /// The threshold producing this point.
    pub threshold: f64,
}

/// Precision-recall curve, thresholds descending (recall increasing).
pub fn pr_curve(scores: &[f64], labels: &[f64]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), labels.len(), "score/label length mismatch");
    let n_pos = labels.iter().filter(|y| **y > 0.0).count();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let mut curve = Vec::new();
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let t = scores[order[i]];
        while i < order.len() && scores[order[i]] == t {
            if labels[order[i]] > 0.0 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push(PrPoint {
            recall: if n_pos == 0 {
                0.0
            } else {
                tp as f64 / n_pos as f64
            },
            precision: if tp + fp == 0 {
                1.0
            } else {
                tp as f64 / (tp + fp) as f64
            },
            threshold: t,
        });
    }
    curve
}

/// Average precision: the step-function integral of the PR curve
/// (`sum (R_k - R_{k-1}) P_k`, scikit-learn's definition). Returns 0 when
/// the positive class is absent.
pub fn average_precision(scores: &[f64], labels: &[f64]) -> f64 {
    let n_pos = labels.iter().filter(|y| **y > 0.0).count();
    if n_pos == 0 {
        return 0.0;
    }
    let curve = pr_curve(scores, labels);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let scores = [2.0, 1.0, -1.0, -2.0];
        let labels = [1.0, 1.0, -1.0, -1.0];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        assert_eq!(accuracy(&scores, &labels, 0.0), 1.0);
        assert_eq!(precision(&scores, &labels, 0.0), 1.0);
        assert_eq!(recall(&scores, &labels, 0.0), 1.0);
    }

    #[test]
    fn inverted_classifier() {
        let scores = [-2.0, -1.0, 1.0, 2.0];
        let labels = [1.0, 1.0, -1.0, -1.0];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
        assert_eq!(accuracy(&scores, &labels, 0.0), 0.0);
    }

    #[test]
    fn random_ties_give_half() {
        let scores = [0.5; 6];
        let labels = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_ranking() {
        // One inversion among 2x2: AUC = 3/4.
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [1.0, 1.0, -1.0, -1.0];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn confusion_counts() {
        let scores = [1.0, 1.0, -1.0, -1.0, 1.0];
        let labels = [1.0, -1.0, -1.0, 1.0, 1.0];
        let c = confusion(&scores, &labels, 0.0);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((precision(&scores, &labels, 0.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall(&scores, &labels, 0.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((accuracy(&scores, &labels, 0.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_precision_is_zero() {
        let scores = [-1.0, -2.0];
        let labels = [1.0, -1.0];
        assert_eq!(precision(&scores, &labels, 0.0), 0.0);
    }

    #[test]
    fn roc_curve_monotone_and_endpoints() {
        let scores = [0.9, 0.7, 0.7, 0.3, 0.1];
        let labels = [1.0, 1.0, -1.0, -1.0, 1.0];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first().unwrap().fpr, 0.0);
        assert_eq!(curve.first().unwrap().tpr, 0.0);
        assert_eq!(curve.last().unwrap().fpr, 1.0);
        assert_eq!(curve.last().unwrap().tpr, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn auc_matches_trapezoid_of_curve() {
        let scores = [0.9, 0.8, 0.7, 0.6, 0.55, 0.54, 0.53, 0.52, 0.51, 0.505];
        let labels = [1.0, 1.0, -1.0, 1.0, 1.0, 1.0, -1.0, -1.0, 1.0, -1.0];
        let curve = roc_curve(&scores, &labels);
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        assert!((roc_auc(&scores, &labels) - area).abs() < 1e-12);
    }

    #[test]
    fn f1_harmonic_mean() {
        let scores = [1.0, 1.0, -1.0, -1.0, 1.0];
        let labels = [1.0, -1.0, -1.0, 1.0, 1.0];
        // precision = recall = 2/3 -> F1 = 2/3.
        assert!((f1_score(&scores, &labels, 0.0) - 2.0 / 3.0).abs() < 1e-12);
        // Degenerate: nothing predicted positive.
        assert_eq!(f1_score(&[-1.0, -1.0], &[1.0, -1.0], 0.0), 0.0);
    }

    #[test]
    fn balanced_accuracy_ignores_skew() {
        // 1 positive (correct), 9 negatives (all correct): balanced = 1.
        let mut scores = vec![1.0];
        let mut labels = vec![1.0];
        scores.extend(vec![-1.0; 9]);
        labels.extend(vec![-1.0; 9]);
        assert_eq!(balanced_accuracy(&scores, &labels, 0.0), 1.0);
        // Classifier that always says negative: TPR 0, TNR 1 -> 0.5,
        // while plain accuracy is a misleading 0.9.
        let all_neg = vec![-1.0; 10];
        assert_eq!(balanced_accuracy(&all_neg, &labels, 0.0), 0.5);
        assert!((accuracy(&all_neg, &labels, 0.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mcc_extremes() {
        let labels = [1.0, 1.0, -1.0, -1.0];
        assert!((matthews_corrcoef(&[1.0, 1.0, -1.0, -1.0], &labels, 0.0) - 1.0).abs() < 1e-12);
        assert!((matthews_corrcoef(&[-1.0, -1.0, 1.0, 1.0], &labels, 0.0) + 1.0).abs() < 1e-12);
        // All predicted positive: a marginal is empty -> 0.
        assert_eq!(matthews_corrcoef(&[1.0; 4], &labels, 0.0), 0.0);
    }

    #[test]
    fn pr_curve_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1.0, 1.0, -1.0, -1.0];
        let curve = pr_curve(&scores, &labels);
        // Every prefix of positives has precision 1 until negatives start.
        assert!((curve[0].precision - 1.0).abs() < 1e-12);
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_of_random_scores_near_prevalence() {
        // With all scores tied, AP equals the positive prevalence.
        let scores = [0.5; 8];
        let labels = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!((average_precision(&scores, &labels) - 0.5).abs() < 1e-12);
        assert_eq!(average_precision(&scores, &[-1.0; 8]), 0.0);
    }

    #[test]
    fn pr_curve_recall_monotone() {
        let scores = [0.9, 0.7, 0.7, 0.3, 0.1, 0.05];
        let labels = [1.0, -1.0, 1.0, 1.0, -1.0, 1.0];
        let curve = pr_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((curve.last().unwrap().recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_mean() {
        let a = Metrics {
            auc: 0.8,
            recall: 0.6,
            precision: 0.7,
            accuracy: 0.75,
        };
        let b = Metrics {
            auc: 1.0,
            recall: 1.0,
            precision: 0.9,
            accuracy: 0.85,
        };
        let m = Metrics::mean(&[a, b]);
        assert!((m.auc - 0.9).abs() < 1e-12);
        assert!((m.recall - 0.8).abs() < 1e-12);
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.accuracy - 0.8).abs() < 1e-12);
    }
}
