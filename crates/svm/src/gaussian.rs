//! The classical baseline: Gaussian (RBF) kernel `e^{-alpha |x - x'|^2}`
//! with the paper's bandwidth choice `alpha = 1 / (m * var(X))` (eq. 9) —
//! the same convention as scikit-learn's `gamma='scale'`.

use crate::kernel::{KernelBlock, KernelMatrix};

/// The paper's bandwidth: `alpha = 1 / (m * var(X))`, where `var(X)` is
/// the variance over all entries of the feature matrix.
pub fn scale_bandwidth(features: &[Vec<f64>]) -> f64 {
    assert!(!features.is_empty(), "empty feature matrix");
    let m = features[0].len();
    let total = (features.len() * m) as f64;
    let mean: f64 = features.iter().flatten().sum::<f64>() / total;
    let var: f64 = features
        .iter()
        .flatten()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / total;
    if var < 1e-12 {
        1.0
    } else {
        1.0 / (m as f64 * var)
    }
}

/// Squared Euclidean distance.
fn dist_sqr(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Symmetric Gaussian kernel matrix over a training set.
pub fn gaussian_gram(features: &[Vec<f64>], alpha: f64) -> KernelMatrix {
    KernelMatrix::from_fn(features.len(), |i, j| {
        (-alpha * dist_sqr(&features[i], &features[j])).exp()
    })
}

/// Rectangular Gaussian kernel block: rows = test points, cols = train.
pub fn gaussian_block(test: &[Vec<f64>], train: &[Vec<f64>], alpha: f64) -> KernelBlock {
    KernelBlock::from_fn(test.len(), train.len(), |i, j| {
        (-alpha * dist_sqr(&test[i], &train[j])).exp()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_one() {
        let pts = vec![vec![0.1, 0.9], vec![1.5, 0.3], vec![0.7, 0.7]];
        let k = gaussian_gram(&pts, 0.5);
        for i in 0..3 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn entries_decay_with_distance() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0]];
        let k = gaussian_gram(&pts, 1.0);
        assert!(k.get(0, 1) > k.get(0, 2));
        assert!((k.get(0, 1) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((k.get(0, 2) - (-9.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn symmetric_and_bounded() {
        let pts: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![i as f64 * 0.3, (i * i) as f64 * 0.1])
            .collect();
        let k = gaussian_gram(&pts, 0.7);
        assert_eq!(k.max_asymmetry(), 0.0);
        for i in 0..6 {
            for j in 0..6 {
                assert!((0.0..=1.0).contains(&k.get(i, j)));
            }
        }
    }

    #[test]
    fn scale_bandwidth_formula() {
        // Two features, entries {0, 2}: mean 1, var 1, m = 2 -> alpha = 0.5.
        let pts = vec![vec![0.0, 2.0], vec![2.0, 0.0]];
        assert!((scale_bandwidth(&pts) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scale_bandwidth_constant_features() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(scale_bandwidth(&pts), 1.0);
    }

    #[test]
    fn block_matches_gram_on_same_points() {
        let pts = vec![vec![0.2, 1.8], vec![1.0, 0.5], vec![0.6, 0.6]];
        let alpha = 0.9;
        let k = gaussian_gram(&pts, alpha);
        let b = gaussian_block(&pts, &pts, alpha);
        for i in 0..3 {
            for j in 0..3 {
                assert!((k.get(i, j) - b.row(i)[j]).abs() < 1e-12);
            }
        }
    }
}
