//! A minimal ChaCha8 block function for fault-schedule decisions.
//!
//! Hand-rolled (the crate is zero-dependency by design) and used as a
//! pure keyed function, not a stream cipher: every fault decision is
//! `block(key(seed), occurrence, nonce(site))[0]`, so the schedule is a
//! function of `(seed, site, occurrence)` alone and replays bitwise on
//! any platform, thread count or interleaving.

/// The "expand 32-byte k" constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One ChaCha8 block: 4 double-rounds over the standard 4x4 state, then
/// the feed-forward addition.
pub(crate) fn block(key: &[u32; 8], counter: u64, nonce: u64) -> [u32; 16] {
    let mut s = [0u32; 16];
    s[..4].copy_from_slice(&SIGMA);
    s[4..12].copy_from_slice(key);
    s[12] = counter as u32;
    s[13] = (counter >> 32) as u32;
    s[14] = nonce as u32;
    s[15] = (nonce >> 32) as u32;
    let input = s;
    for _ in 0..4 {
        // Column round.
        quarter(&mut s, 0, 4, 8, 12);
        quarter(&mut s, 1, 5, 9, 13);
        quarter(&mut s, 2, 6, 10, 14);
        quarter(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut s, 0, 5, 10, 15);
        quarter(&mut s, 1, 6, 11, 12);
        quarter(&mut s, 2, 7, 8, 13);
        quarter(&mut s, 3, 4, 9, 14);
    }
    for (word, start) in s.iter_mut().zip(input) {
        *word = word.wrapping_add(start);
    }
    s
}

/// Expands a 64-bit seed into a ChaCha key via splitmix64 — the standard
/// seed-stretching finalizer, good enough to decorrelate nearby seeds.
pub(crate) fn key_from_seed(seed: u64) -> [u32; 8] {
    let mut key = [0u32; 8];
    let mut x = seed;
    for pair in key.chunks_mut(2) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        pair[0] = z as u32;
        pair[1] = (z >> 32) as u32;
    }
    key
}

/// FNV-1a 64 over a site name: the per-site stream nonce.
pub(crate) fn site_nonce(site: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in site.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_deterministic_and_key_sensitive() {
        let k = key_from_seed(42);
        assert_eq!(block(&k, 0, 1), block(&k, 0, 1));
        assert_ne!(block(&k, 0, 1), block(&k, 1, 1));
        assert_ne!(block(&k, 0, 1), block(&k, 0, 2));
        assert_ne!(block(&key_from_seed(43), 0, 1), block(&k, 0, 1));
    }

    #[test]
    fn words_are_roughly_uniform() {
        // Sanity, not a statistical test: over 4096 draws the top bit
        // should be set close to half the time.
        let k = key_from_seed(7);
        let ones: u32 = (0..4096).map(|i| block(&k, i, 0)[0] >> 31).sum();
        assert!((1500..=2600).contains(&ones), "top-bit count {ones}");
    }

    #[test]
    fn site_nonce_separates_names() {
        assert_ne!(site_nonce("gram.ckpt.store"), site_nonce("gram.ckpt.load"));
        assert_eq!(site_nonce("x"), site_nonce("x"));
    }
}
