//! Bounded exponential-backoff retry — the recovery half of the crate.

use std::time::{Duration, Instant};

/// Bounded exponential backoff: attempt `max_attempts` times, sleeping
/// `min(base_delay << retry, max_delay)` between attempts, and give up
/// early once `max_elapsed` wall-clock (if set) has been spent.
///
/// The policy bounds *recovery effort*, not the fault schedule: retries
/// re-run the guarded operation, so under an armed fault plan each
/// attempt counts as a fresh occurrence at the fault site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (0 is clamped to 1).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each retry after.
    pub base_delay: Duration,
    /// Ceiling on any single sleep.
    pub max_delay: Duration,
    /// Optional wall-clock budget across all attempts; once spent, no
    /// further retries are made even if attempts remain.
    pub max_elapsed: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            max_elapsed: None,
        }
    }
}

/// The outcome of [`RetryPolicy::run`]: the final result plus how many
/// retries (attempts beyond the first) it took to get there.
#[derive(Debug)]
pub struct Retried<T, E> {
    /// The last attempt's result — `Ok` from the first success, or the
    /// final `Err` once the policy gave up.
    pub result: Result<T, E>,
    /// Attempts beyond the first, whether or not the last succeeded.
    pub retries: u32,
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no sleeping.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `retry` (0-based).
    pub fn delay_for(&self, retry: u32) -> Duration {
        let shift = retry.min(20); // 2^20 * base is already > max_delay
        self.base_delay
            .saturating_mul(1u32 << shift)
            .min(self.max_delay)
    }

    /// Runs `op` until it succeeds or the policy is exhausted.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Retried<T, E> {
        let attempts = self.max_attempts.max(1);
        let started = Instant::now();
        let mut retries = 0;
        loop {
            match op() {
                Ok(value) => {
                    return Retried {
                        result: Ok(value),
                        retries,
                    }
                }
                Err(err) => {
                    let budget_spent = self.max_elapsed.is_some_and(|cap| started.elapsed() >= cap);
                    if retries + 1 >= attempts || budget_spent {
                        return Retried {
                            result: Err(err),
                            retries,
                        };
                    }
                    std::thread::sleep(self.delay_for(retries));
                    retries += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_and_cap() {
        let p = RetryPolicy {
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(35),
            ..RetryPolicy::default()
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(5));
        assert_eq!(p.delay_for(1), Duration::from_millis(10));
        assert_eq!(p.delay_for(2), Duration::from_millis(20));
        assert_eq!(p.delay_for(3), Duration::from_millis(35));
        assert_eq!(p.delay_for(31), Duration::from_millis(35));
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let p = RetryPolicy {
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let r = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.result, Ok(3));
        assert_eq!(r.retries, 2);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let r: Retried<(), &str> = p.run(|| {
            calls += 1;
            Err("persistent")
        });
        assert_eq!(r.result, Err("persistent"));
        assert_eq!(r.retries, 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let r: Retried<(), ()> = p.run(|| {
            calls += 1;
            Err(())
        });
        assert_eq!(calls, 1);
        assert_eq!(r.retries, 0);
        assert!(r.result.is_err());
    }

    #[test]
    fn elapsed_budget_stops_retrying() {
        let p = RetryPolicy {
            max_attempts: 1000,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(2),
            max_elapsed: Some(Duration::from_millis(20)),
        };
        let mut calls = 0u32;
        let r: Retried<(), ()> = p.run(|| {
            calls += 1;
            Err(())
        });
        assert!(r.result.is_err());
        assert!(calls < 1000, "budget must cut the attempt loop short");
    }

    #[test]
    fn none_policy_is_single_shot() {
        let mut calls = 0;
        let r: Retried<(), ()> = RetryPolicy::none().run(|| {
            calls += 1;
            Err(())
        });
        assert_eq!(calls, 1);
        assert_eq!(r.retries, 0);
        assert!(r.result.is_err());
    }
}
