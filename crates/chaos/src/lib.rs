//! qk-chaos: deterministic fault injection for the quantum-kernel
//! pipeline, plus the bounded-backoff retry policy its consumers use to
//! recover.
//!
//! A [`FaultPlan`] arms named fault sites (see [`sites`]) with faults
//! ([`Fault::Io`], [`Fault::Panic`], [`Fault::Stall`]) on occurrence
//! triggers ([`Trigger`]). Arming yields a cheap, cloneable [`Chaos`]
//! handle; hardened code calls `chaos.check(site)` at each guarded
//! operation and acts out whatever fault comes back. Decisions are a
//! pure function of `(seed, site, occurrence)` through a hand-rolled
//! ChaCha8 block, so a plan's fault schedule replays bitwise across
//! runs, platforms and thread counts. With no plan armed a check is a
//! single branch; under the `chaos-off` feature it compiles to a
//! constant `None` and the injection branches vanish entirely.
//!
//! The crate is deliberately zero-dependency so the handle can live in
//! checkpoint and serving hot paths without dragging anything along.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chacha;
mod plan;
mod retry;

pub use plan::{Chaos, Fault, FaultPlan, Trigger};
pub use retry::{Retried, RetryPolicy};

/// The catalog of named fault sites the pipeline guards. Site names are
/// free-form strings — these constants just keep plan specs and check
/// calls in sync.
pub mod sites {
    /// `CheckpointStore::store` of a finished gram tile.
    pub const GRAM_CKPT_STORE: &str = "gram.ckpt.store";
    /// `CheckpointStore::load_classified` during gram restore scans.
    pub const GRAM_CKPT_LOAD: &str = "gram.ckpt.load";
    /// A gram worker mid-tile (fires as a worker-thread panic).
    pub const GRAM_TILE: &str = "gram.worker.tile";
    /// A serve worker at the top of a batch (fires as a panic).
    pub const SERVE_BATCH: &str = "serve.worker.batch";
    /// The serve queue between dequeue and batching (fires as a stall).
    pub const SERVE_QUEUE: &str = "serve.queue.stall";
    /// The SVM trainer persisting a solver-state snapshot.
    pub const SVM_CKPT_STORE: &str = "svm.ckpt.store";
    /// The SVM trainer reading a solver-state snapshot on warm start.
    pub const SVM_CKPT_LOAD: &str = "svm.ckpt.load";
    /// A kernel-row load into the trainer's row cache.
    pub const SVM_ROW_LOAD: &str = "svm.row.load";
}
