//! Seeded fault plans and the armed [`Chaos`] handle consumers carry.

use crate::chacha;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an armed site does to the operation that hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail with a synthetic I/O error; the guarded operation must not
    /// have run.
    Io,
    /// Panic, as a crashed worker thread would.
    Panic,
    /// Sleep for the given duration before proceeding (queue stalls,
    /// slow disks).
    Stall(Duration),
}

impl Fault {
    /// The synthetic error an [`Fault::Io`] injection surfaces, tagged
    /// with its site so logs distinguish injected faults from real ones.
    pub fn io_error(site: &str) -> std::io::Error {
        std::io::Error::other(format!("chaos: injected I/O fault at {site}"))
    }
}

/// Which occurrences of a site fire its fault. Occurrences are counted
/// from 0 each time a plan is armed.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Every occurrence.
    Always,
    /// Occurrences `0..n` — a transient burst that retries outlast.
    First(u64),
    /// Every occurrence `>= n` — a persistent failure that sets in.
    From(u64),
    /// Exactly the listed occurrences.
    At(Vec<u64>),
    /// Each occurrence independently with probability `p`, drawn from
    /// the site's ChaCha8 stream at the occurrence index — so the same
    /// `(seed, site, occurrence)` always draws the same answer.
    Random(f64),
}

#[derive(Debug)]
struct Site {
    fault: Fault,
    trigger: Trigger,
    occurrence: AtomicU64,
    injected: AtomicU64,
}

#[derive(Debug)]
struct PlanState {
    key: [u32; 8],
    sites: BTreeMap<String, Site>,
    rank_deaths: BTreeMap<usize, u64>,
    injected_total: AtomicU64,
}

/// A description of which faults to inject where. Build one, then
/// [`FaultPlan::arm`] it into the [`Chaos`] handle the pipeline carries.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: BTreeMap<String, (Fault, Trigger)>,
    rank_deaths: BTreeMap<usize, u64>,
}

impl FaultPlan {
    /// An empty plan keyed on `seed`. The seed only matters to
    /// [`Trigger::Random`] sites; counted triggers replay identically
    /// under any seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: BTreeMap::new(),
            rank_deaths: BTreeMap::new(),
        }
    }

    /// Arms `site` with `fault` on `trigger` (one rule per site; a
    /// second call replaces the first).
    pub fn inject(mut self, site: &str, fault: Fault, trigger: Trigger) -> FaultPlan {
        self.rules.insert(site.to_string(), (fault, trigger));
        self
    }

    /// Marks `rank` to die after completing `after_tiles` tiles of its
    /// assignment. Rank 0 is the coordinator and is never killed;
    /// marking it is a no-op.
    pub fn kill_rank(mut self, rank: usize, after_tiles: u64) -> FaultPlan {
        if rank != 0 {
            self.rank_deaths.insert(rank, after_tiles);
        }
        self
    }

    /// Parses the CLI fault-spec grammar: comma-separated entries of
    /// `site=fault@trigger` or `rank-death:<rank>@<tiles>`, where fault
    /// is `io` | `panic` | `stall:<ms>` and trigger is `always` |
    /// `first:<n>` | `from:<n>` | `at:<i[;j...]>` | `p:<float>`.
    ///
    /// Example: `gram.ckpt.store=io@first:2,rank-death:1@2`.
    pub fn parse(seed: u64, spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            if let Some(rest) = entry.strip_prefix("rank-death:") {
                let (rank, tiles) = rest
                    .split_once('@')
                    .ok_or_else(|| format!("bad rank-death entry: {entry}"))?;
                let rank: usize = rank.parse().map_err(|_| format!("bad rank: {rank}"))?;
                let tiles: u64 = tiles.parse().map_err(|_| format!("bad tiles: {tiles}"))?;
                plan = plan.kill_rank(rank, tiles);
                continue;
            }
            let (site, rule) = entry
                .split_once('=')
                .ok_or_else(|| format!("missing '=' in entry: {entry}"))?;
            let (fault, trigger) = rule
                .split_once('@')
                .ok_or_else(|| format!("missing '@' in entry: {entry}"))?;
            let fault = if let Some(ms) = fault.strip_prefix("stall:") {
                let ms: u64 = ms.parse().map_err(|_| format!("bad stall ms: {ms}"))?;
                Fault::Stall(Duration::from_millis(ms))
            } else {
                match fault {
                    "io" => Fault::Io,
                    "panic" => Fault::Panic,
                    other => return Err(format!("unknown fault: {other}")),
                }
            };
            let trigger = if trigger == "always" {
                Trigger::Always
            } else if let Some(n) = trigger.strip_prefix("first:") {
                Trigger::First(n.parse().map_err(|_| format!("bad count: {n}"))?)
            } else if let Some(n) = trigger.strip_prefix("from:") {
                Trigger::From(n.parse().map_err(|_| format!("bad count: {n}"))?)
            } else if let Some(list) = trigger.strip_prefix("at:") {
                let occurrences = list
                    .split(';')
                    .map(|i| i.parse().map_err(|_| format!("bad occurrence: {i}")))
                    .collect::<Result<Vec<u64>, String>>()?;
                Trigger::At(occurrences)
            } else if let Some(p) = trigger.strip_prefix("p:") {
                let p: f64 = p.parse().map_err(|_| format!("bad probability: {p}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability out of range: {p}"));
                }
                Trigger::Random(p)
            } else {
                return Err(format!("unknown trigger: {trigger}"));
            };
            plan = plan.inject(site.trim(), fault, trigger);
        }
        Ok(plan)
    }

    /// Freezes the plan into an armed handle with fresh occurrence
    /// counters. Arming the same plan twice yields two independent
    /// handles that replay the identical fault schedule.
    pub fn arm(self) -> Chaos {
        let sites = self
            .rules
            .into_iter()
            .map(|(name, (fault, trigger))| {
                (
                    name,
                    Site {
                        fault,
                        trigger,
                        occurrence: AtomicU64::new(0),
                        injected: AtomicU64::new(0),
                    },
                )
            })
            .collect();
        Chaos {
            inner: Some(Arc::new(PlanState {
                key: chacha::key_from_seed(self.seed),
                sites,
                rank_deaths: self.rank_deaths,
                injected_total: AtomicU64::new(0),
            })),
        }
    }
}

/// The handle hardened components carry. Cloning shares the occurrence
/// counters, so one armed plan spans every thread of a job. The default
/// handle is disarmed: every check is a branch on a `None` and returns
/// nothing. Under the `chaos-off` feature the checks compile to
/// constant `None` regardless of arming.
#[derive(Debug, Clone, Default)]
pub struct Chaos {
    inner: Option<Arc<PlanState>>,
}

/// Configuration equality cares about *which plan* a handle carries,
/// not counter progress: two handles are equal when they share one
/// armed plan (or are both disarmed).
impl PartialEq for Chaos {
    fn eq(&self, other: &Chaos) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Chaos {
    /// A handle with no plan: every check answers `None` for free.
    pub fn disarmed() -> Chaos {
        Chaos::default()
    }

    /// Whether a plan is armed (always `false` under `chaos-off`).
    pub fn is_armed(&self) -> bool {
        !cfg!(feature = "chaos-off") && self.inner.is_some()
    }

    /// Counts one occurrence of `site` and returns the fault to inject
    /// at it, if the armed plan says so. The decision is a pure function
    /// of `(seed, site, occurrence-index)`; the occurrence counter is
    /// the only shared state.
    #[cfg(not(feature = "chaos-off"))]
    pub fn check(&self, site: &str) -> Option<Fault> {
        let state = self.inner.as_ref()?;
        let s = state.sites.get(site)?;
        let occ = s.occurrence.fetch_add(1, Ordering::Relaxed);
        let hit = match &s.trigger {
            Trigger::Always => true,
            Trigger::First(n) => occ < *n,
            Trigger::From(n) => occ >= *n,
            Trigger::At(list) => list.contains(&occ),
            Trigger::Random(p) => {
                let word = chacha::block(&state.key, occ, chacha::site_nonce(site))[0];
                // Threshold compare in the u32 domain: p of the lattice.
                (f64::from(word)) < p * 4_294_967_296.0
            }
        };
        if hit {
            s.injected.fetch_add(1, Ordering::Relaxed);
            state.injected_total.fetch_add(1, Ordering::Relaxed);
            Some(s.fault)
        } else {
            None
        }
    }

    /// `chaos-off` build: the check is a constant `None` the optimizer
    /// erases along with the match on it.
    #[cfg(feature = "chaos-off")]
    pub fn check(&self, _site: &str) -> Option<Fault> {
        None
    }

    /// The tile count after which `rank` is planned to die, if any.
    /// Unlike [`Chaos::check`] this reads the plan without counting an
    /// occurrence — rank death is a property of the rank, not of a call
    /// site.
    #[cfg(not(feature = "chaos-off"))]
    pub fn rank_death(&self, rank: usize) -> Option<u64> {
        self.inner.as_ref()?.rank_deaths.get(&rank).copied()
    }

    /// `chaos-off` build: no rank ever dies.
    #[cfg(feature = "chaos-off")]
    pub fn rank_death(&self, _rank: usize) -> Option<u64> {
        None
    }

    /// Total faults injected through this plan so far (all sites).
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|s| s.injected_total.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Faults injected at one site so far.
    pub fn injected_at(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|s| s.sites.get(site))
            .map(|s| s.injected.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Occurrences counted at one site so far (hits and misses).
    pub fn occurrences_at(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|s| s.sites.get(site))
            .map(|s| s.occurrence.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_checks_are_free_nones() {
        let c = Chaos::disarmed();
        assert!(!c.is_armed());
        assert_eq!(c.check("anything"), None);
        assert_eq!(c.rank_death(1), None);
        assert_eq!(c.injected(), 0);
    }

    #[cfg_attr(feature = "chaos-off", ignore = "chaos-off compiles checks out")]
    #[test]
    fn counted_triggers_fire_at_their_occurrences() {
        let c = FaultPlan::new(1)
            .inject("a", Fault::Io, Trigger::First(2))
            .inject("b", Fault::Panic, Trigger::From(3))
            .inject("c", Fault::Io, Trigger::At(vec![1, 4]))
            .arm();
        let hits: Vec<bool> = (0..5).map(|_| c.check("a").is_some()).collect();
        assert_eq!(hits, [true, true, false, false, false]);
        let hits: Vec<bool> = (0..5).map(|_| c.check("b").is_some()).collect();
        assert_eq!(hits, [false, false, false, true, true]);
        let hits: Vec<bool> = (0..5).map(|_| c.check("c").is_some()).collect();
        assert_eq!(hits, [false, true, false, false, true]);
        assert_eq!(c.injected_at("a"), 2);
        assert_eq!(c.injected(), 2 + 2 + 2);
        // Unarmed sites never fire and count nothing.
        assert_eq!(c.check("unknown"), None);
        assert_eq!(c.occurrences_at("unknown"), 0);
    }

    #[cfg_attr(feature = "chaos-off", ignore = "chaos-off compiles checks out")]
    #[test]
    fn random_schedules_replay_bitwise_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let c = FaultPlan::new(seed)
                .inject("s", Fault::Io, Trigger::Random(0.3))
                .arm();
            (0..256).map(|_| c.check("s").is_some()).collect()
        };
        let a = draw(99);
        assert_eq!(a, draw(99), "same seed must replay the same schedule");
        assert_ne!(a, draw(100), "a different seed must diverge");
        let fired = a.iter().filter(|&&h| h).count();
        assert!((30..=130).contains(&fired), "p=0.3 of 256 fired {fired}");
        // The probability extremes are exact, not approximate.
        let c = FaultPlan::new(5)
            .inject("never", Fault::Io, Trigger::Random(0.0))
            .inject("ever", Fault::Io, Trigger::Random(1.0))
            .arm();
        assert!((0..64).all(|_| c.check("never").is_none()));
        assert!((0..64).all(|_| c.check("ever").is_some()));
    }

    #[cfg_attr(feature = "chaos-off", ignore = "chaos-off compiles checks out")]
    #[test]
    fn clones_share_one_occurrence_stream() {
        let c = FaultPlan::new(0)
            .inject("s", Fault::Io, Trigger::First(1))
            .arm();
        let d = c.clone();
        assert!(d.check("s").is_some());
        assert!(c.check("s").is_none(), "occurrence 0 was already consumed");
        assert_eq!(c, d);
        assert_ne!(c, Chaos::disarmed());
    }

    #[test]
    fn spec_grammar_round_trips() {
        let plan = FaultPlan::parse(
            7,
            "gram.ckpt.store=io@first:2, gram.worker.tile=panic@at:3;5,\
             serve.queue.stall=stall:40@p:0.25,rank-death:2@1",
        )
        .unwrap();
        let expected = FaultPlan::new(7)
            .inject("gram.ckpt.store", Fault::Io, Trigger::First(2))
            .inject("gram.worker.tile", Fault::Panic, Trigger::At(vec![3, 5]))
            .inject(
                "serve.queue.stall",
                Fault::Stall(Duration::from_millis(40)),
                Trigger::Random(0.25),
            )
            .kill_rank(2, 1);
        assert_eq!(plan, expected);
        assert_eq!(FaultPlan::parse(0, "").unwrap(), FaultPlan::new(0));
        for bad in [
            "site-without-rule",
            "s=io",
            "s=wat@always",
            "s=io@p:1.5",
            "s=io@sometimes",
            "rank-death:x@1",
        ] {
            assert!(FaultPlan::parse(0, bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn killing_rank_zero_is_refused() {
        let plan = FaultPlan::new(0).kill_rank(0, 5).kill_rank(1, 2);
        let c = plan.arm();
        assert_eq!(c.rank_death(0), None);
        #[cfg(not(feature = "chaos-off"))]
        assert_eq!(c.rank_death(1), Some(2));
    }

    #[test]
    fn injected_io_error_names_its_site() {
        let e = Fault::io_error("gram.ckpt.store");
        assert!(e.to_string().contains("gram.ckpt.store"));
    }
}
