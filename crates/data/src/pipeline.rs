//! The paper's "standard data engineering pipeline": standardize, rescale
//! to the `(0, 2)` interval required by the feature map, balanced seeded
//! down-selection, and a stratified 80/20 train-test split.
//!
//! All statistics (means, mins, maxes) are fitted on the training portion
//! and applied to the test portion — never the other way around.

use crate::dataset::{Dataset, Label};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-feature affine statistics fitted on training data.
#[derive(Debug, Clone)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
    mins: Vec<f64>,
    maxes: Vec<f64>,
}

impl Scaler {
    /// Fits standardization and min-max statistics on a dataset.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let n = data.len() as f64;
        let m = data.num_features();
        let mut means = vec![0.0; m];
        for row in &data.features {
            for (acc, x) in means.iter_mut().zip(row) {
                *acc += x;
            }
        }
        for v in &mut means {
            *v /= n;
        }
        let mut stds = vec![0.0; m];
        for row in &data.features {
            for ((acc, x), mu) in stds.iter_mut().zip(row).zip(&means) {
                *acc += (x - mu) * (x - mu);
            }
        }
        for v in &mut stds {
            *v = (*v / n).sqrt();
            if *v < 1e-12 {
                *v = 1.0; // constant feature: leave centered at zero
            }
        }
        // Min/max of the *standardized* values.
        let mut mins = vec![f64::INFINITY; m];
        let mut maxes = vec![f64::NEG_INFINITY; m];
        for row in &data.features {
            for j in 0..m {
                let z = (row[j] - means[j]) / stds[j];
                mins[j] = mins[j].min(z);
                maxes[j] = maxes[j].max(z);
            }
        }
        for j in 0..m {
            if maxes[j] - mins[j] < 1e-12 {
                mins[j] = -1.0;
                maxes[j] = 1.0;
            }
        }
        Scaler {
            means,
            stds,
            mins,
            maxes,
        }
    }

    /// Standardizes then min-max rescales one row into `(0, 2)`; values
    /// outside the fitted range (possible on test data) are clamped.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature width mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &x)| {
                let z = (x - self.means[j]) / self.stds[j];
                let scaled = 2.0 * (z - self.mins[j]) / (self.maxes[j] - self.mins[j]);
                scaled.clamp(0.0, 2.0)
            })
            .collect()
    }

    /// Transforms a whole dataset.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset::new(
            data.features
                .iter()
                .map(|r| self.transform_row(r))
                .collect(),
            data.labels.clone(),
        )
    }
}

/// A train/test split.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

/// Draws a balanced subsample of `n` rows (`n/2` per class), seeded.
///
/// # Panics
/// Panics if either class has fewer than `n / 2` samples.
pub fn balanced_subsample(data: &Dataset, n: usize, seed: u64) -> Dataset {
    let per_class = n / 2;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut illicit: Vec<usize> = (0..data.len())
        .filter(|&i| data.labels[i] == Label::Illicit)
        .collect();
    let mut licit: Vec<usize> = (0..data.len())
        .filter(|&i| data.labels[i] == Label::Licit)
        .collect();
    assert!(
        illicit.len() >= per_class && licit.len() >= per_class,
        "not enough samples per class for a balanced subsample of {n}"
    );
    illicit.shuffle(&mut rng);
    licit.shuffle(&mut rng);
    let mut chosen: Vec<usize> = illicit[..per_class]
        .iter()
        .chain(&licit[..per_class])
        .copied()
        .collect();
    chosen.shuffle(&mut rng);
    data.select(&chosen)
}

/// Stratified train/test split with the given train fraction (the paper
/// uses 0.8), seeded.
pub fn stratified_split(data: &Dataset, train_fraction: f64, seed: u64) -> Split {
    assert!(
        (0.0..1.0).contains(&train_fraction),
        "fraction must be in (0, 1)"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in [Label::Illicit, Label::Licit] {
        let mut idx: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels[i] == class)
            .collect();
        idx.shuffle(&mut rng);
        let cut = ((idx.len() as f64) * train_fraction).round() as usize;
        train_idx.extend_from_slice(&idx[..cut]);
        test_idx.extend_from_slice(&idx[cut..]);
    }
    train_idx.shuffle(&mut rng);
    test_idx.shuffle(&mut rng);
    Split {
        train: data.select(&train_idx),
        test: data.select(&test_idx),
    }
}

/// End-to-end preparation used by every experiment: balanced subsample of
/// `n` rows with `k` features, stratified 80/20 split, scaler fitted on
/// train and applied to both.
pub fn prepare_experiment(data: &Dataset, n: usize, k: usize, seed: u64) -> Split {
    let sub = balanced_subsample(data, n, seed).truncate_features(k);
    let split = stratified_split(&sub, 0.8, seed);
    let scaler = Scaler::fit(&split.train);
    Split {
        train: scaler.transform(&split.train),
        test: scaler.transform(&split.test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    fn toy() -> Dataset {
        generate(&SyntheticConfig::small(11))
    }

    #[test]
    fn scaler_maps_train_into_unit_interval() {
        let d = toy();
        let scaler = Scaler::fit(&d);
        let t = scaler.transform(&d);
        for row in &t.features {
            for &x in row {
                assert!((0.0..=2.0).contains(&x), "value {x} outside (0,2)");
            }
        }
        // Extremes are attained (min-max scaling is tight on train data).
        let any_zero = t.features.iter().flatten().any(|&x| x < 1e-9);
        let any_two = t.features.iter().flatten().any(|&x| x > 2.0 - 1e-9);
        assert!(any_zero && any_two);
    }

    #[test]
    fn scaler_clamps_test_outliers() {
        let d = toy();
        let scaler = Scaler::fit(&d);
        let wild = vec![1e6; d.num_features()];
        let t = scaler.transform_row(&wild);
        assert!(t.iter().all(|&x| x <= 2.0));
        let wild_neg = vec![-1e6; d.num_features()];
        let t2 = scaler.transform_row(&wild_neg);
        assert!(t2.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn scaler_handles_constant_feature() {
        let d = Dataset::new(
            vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]],
            vec![Label::Illicit, Label::Licit, Label::Licit],
        );
        let scaler = Scaler::fit(&d);
        let t = scaler.transform(&d);
        assert!(t.features.iter().all(|r| r.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn balanced_subsample_is_balanced() {
        let d = toy();
        let sub = balanced_subsample(&d, 80, 5);
        assert_eq!(sub.len(), 80);
        assert_eq!(sub.num_illicit(), 40);
        assert_eq!(sub.num_licit(), 40);
    }

    #[test]
    fn balanced_subsample_seeded() {
        let d = toy();
        let a = balanced_subsample(&d, 40, 5);
        let b = balanced_subsample(&d, 40, 5);
        assert_eq!(a.features, b.features);
        let c = balanced_subsample(&d, 40, 6);
        assert_ne!(a.features, c.features);
    }

    #[test]
    #[should_panic(expected = "not enough samples")]
    fn oversized_subsample_panics() {
        let d = toy();
        balanced_subsample(&d, 10_000, 1);
    }

    #[test]
    fn stratified_split_fractions() {
        let d = toy();
        let split = stratified_split(&d, 0.8, 3);
        assert_eq!(split.train.len() + split.test.len(), d.len());
        // Both classes present in both portions, roughly 80/20.
        let frac = split.train.len() as f64 / d.len() as f64;
        assert!((0.75..0.85).contains(&frac));
        assert!(split.train.num_illicit() > 0 && split.test.num_illicit() > 0);
        assert!(split.train.num_licit() > 0 && split.test.num_licit() > 0);
    }

    #[test]
    fn split_is_disjoint() {
        // No row may appear in both portions (rows are unique with high
        // probability in the synthetic data).
        let d = toy();
        let split = stratified_split(&d, 0.8, 3);
        for tr in &split.train.features {
            assert!(!split.test.features.contains(tr), "row leaked across split");
        }
    }

    #[test]
    fn prepare_experiment_end_to_end() {
        let d = toy();
        let split = prepare_experiment(&d, 100, 10, 2);
        assert_eq!(split.train.len(), 80);
        assert_eq!(split.test.len(), 20);
        assert_eq!(split.train.num_features(), 10);
        assert_eq!(split.test.num_features(), 10);
        assert_eq!(split.train.num_illicit(), 40);
        for row in split.train.features.iter().chain(&split.test.features) {
            assert!(row.iter().all(|&x| (0.0..=2.0).contains(&x)));
        }
    }
}
