//! # qk-data
//!
//! Dataset substrate for the quantum-kernel experiments:
//!
//! * [`dataset`] — labeled dense datasets with the illicit/licit labels of
//!   the paper's fraud-detection task.
//! * [`synthetic`] — the elliptic-like generator standing in for the
//!   Kaggle Elliptic Bitcoin download (see DESIGN.md, substitution 3).
//! * [`pipeline`] — standardize, rescale to `(0, 2)`, balanced seeded
//!   subsampling, stratified 80/20 splits.
//! * [`csv`] — loader for dropping in a real CSV dataset.
//!
//! ## Example: generate data and prepare an experiment split
//!
//! ```
//! use qk_data::{generate, prepare_experiment, SyntheticConfig};
//!
//! let data = generate(&SyntheticConfig::small(7));
//! // 40 balanced samples, first 6 features, seeded: train is 32 rows,
//! // test 8, features rescaled into the ansatz's (0, 2) domain.
//! let split = prepare_experiment(&data, 40, 6, 7);
//! assert_eq!(split.train.features.len(), 32);
//! assert_eq!(split.test.features.len(), 8);
//! assert!(split.train.features.iter().flatten().all(|&x| (0.0..=2.0).contains(&x)));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod pipeline;
pub mod synthetic;

pub use dataset::{Dataset, Label};
pub use pipeline::{balanced_subsample, prepare_experiment, stratified_split, Scaler, Split};
pub use synthetic::{generate, SyntheticConfig};
