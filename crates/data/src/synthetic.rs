//! Synthetic "elliptic-like" dataset generator.
//!
//! The paper evaluates on the Kaggle Elliptic Bitcoin dataset (165
//! features; 4,545 illicit / 42,019 licit transactions), which is an
//! external download. This module generates a stand-in with the same
//! schema and — more importantly — the statistical properties the paper's
//! Figs. 9-10 measure:
//!
//! * class signal lives in a low-dimensional **non-linear** latent space
//!   (an XOR-like interaction plus a radial term), so kernel machines have
//!   an edge over linear ones;
//! * every observed feature is a random projection of the latent signal
//!   plus independent noise, so each additional feature contributes
//!   additional signal-to-noise — test AUC improves with feature count;
//! * per-feature noise keeps single features weak, so small training sets
//!   overfit at high feature counts — test AUC improves with sample count.
//!
//! Generation is fully deterministic given the seed.

use crate::dataset::{Dataset, Label};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Observed feature dimension (165 in the paper's dataset).
    pub num_features: usize,
    /// Number of positive (illicit) samples.
    pub num_illicit: usize,
    /// Number of negative (licit) samples.
    pub num_licit: usize,
    /// Latent dimension carrying the class signal.
    pub latent_dim: usize,
    /// Standard deviation of per-feature observation noise, relative to a
    /// unit-variance projected signal. Larger = harder task.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_features: 165,
            num_illicit: 4_545,
            num_licit: 42_019,
            latent_dim: 8,
            noise: 2.4,
            seed: 7,
        }
    }
}

impl SyntheticConfig {
    /// The full elliptic-like shape with a custom seed.
    pub fn elliptic_like(seed: u64) -> Self {
        SyntheticConfig {
            seed,
            ..Self::default()
        }
    }

    /// A small configuration for unit tests and quick examples.
    pub fn small(seed: u64) -> Self {
        SyntheticConfig {
            num_features: 20,
            num_illicit: 60,
            num_licit: 140,
            latent_dim: 6,
            noise: 2.4,
            seed,
        }
    }
}

/// Standard normal sampler via Box-Muller.
fn normal(rng: &mut ChaCha8Rng) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Non-linear class score in latent space. Zero-mean by construction for
/// standard-normal input, so thresholding at 0 gives roughly balanced
/// acceptance during rejection sampling.
fn latent_score(z: &[f64]) -> f64 {
    let l = z.len();
    debug_assert!(l >= 4, "latent_dim must be at least 4");
    // XOR-like interaction (favours kernels over linear classifiers) ...
    let xor = z[0] * z[1];
    // ... a radial component (distance from a shell), zero-mean for chi^2_2
    let radial = 0.5 * (z[2] * z[2] + z[3] * z[3] - 2.0);
    // ... and a weak linear part so the task is not linearly hopeless.
    let linear: f64 = z.iter().skip(4).sum::<f64>() * 0.3;
    xor + radial + linear
}

/// Margin applied around the decision surface during rejection sampling.
/// A margin makes the classes separable-with-noise rather than abutting,
/// landing the achievable AUC in the paper's 0.8-0.95 band.
const SCORE_MARGIN: f64 = 0.25;

/// Generates the dataset described by `config`.
///
/// Samples appear in illicit-then-licit order; downstream code shuffles
/// with its own seeding during subsampling/splits.
pub fn generate(config: &SyntheticConfig) -> Dataset {
    assert!(config.latent_dim >= 4, "latent_dim must be at least 4");
    assert!(config.num_features >= 1, "need at least one feature");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Random projection matrix W: num_features x latent_dim. Rows are
    // normalized so every feature carries comparable (weak) signal.
    let w: Vec<Vec<f64>> = (0..config.num_features)
        .map(|_| {
            let mut row: Vec<f64> = (0..config.latent_dim).map(|_| normal(&mut rng)).collect();
            let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for x in &mut row {
                *x /= norm;
            }
            row
        })
        .collect();

    let total = config.num_illicit + config.num_licit;
    let mut features = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);

    let draw_class = |rng: &mut ChaCha8Rng, want_positive: bool| -> Vec<f64> {
        // Rejection-sample a latent vector on the requested side of the
        // decision surface (with margin).
        loop {
            let z: Vec<f64> = (0..config.latent_dim).map(|_| normal(rng)).collect();
            let s = latent_score(&z);
            let ok = if want_positive {
                s > SCORE_MARGIN
            } else {
                s < -SCORE_MARGIN
            };
            if ok {
                return z;
            }
        }
    };

    for class_positive in [true, false] {
        let count = if class_positive {
            config.num_illicit
        } else {
            config.num_licit
        };
        for _ in 0..count {
            let z = draw_class(&mut rng, class_positive);
            let row: Vec<f64> = w
                .iter()
                .map(|wj| {
                    let signal: f64 = wj.iter().zip(&z).map(|(a, b)| a * b).sum();
                    signal + config.noise * normal(&mut rng)
                })
                .collect();
            features.push(row);
            labels.push(if class_positive {
                Label::Illicit
            } else {
                Label::Licit
            });
        }
    }

    Dataset::new(features, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = SyntheticConfig::small(1);
        let d = generate(&cfg);
        assert_eq!(d.len(), 200);
        assert_eq!(d.num_features(), 20);
        assert_eq!(d.num_illicit(), 60);
        assert_eq!(d.num_licit(), 140);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&SyntheticConfig::small(42));
        let b = generate(&SyntheticConfig::small(42));
        assert_eq!(a.features, b.features);
        let c = generate(&SyntheticConfig::small(43));
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn features_are_finite() {
        let d = generate(&SyntheticConfig::small(2));
        assert!(d
            .features
            .iter()
            .all(|row| row.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn latent_score_is_roughly_centered() {
        // Empirical mean of the latent score over standard normals should
        // be near zero, keeping rejection sampling efficient.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let mut acc = 0.0;
        let mut pos = 0usize;
        for _ in 0..n {
            let z: Vec<f64> = (0..6).map(|_| normal(&mut rng)).collect();
            let s = latent_score(&z);
            acc += s;
            if s > 0.0 {
                pos += 1;
            }
        }
        assert!((acc / n as f64).abs() < 0.05, "mean {}", acc / n as f64);
        let frac = pos as f64 / n as f64;
        assert!((0.25..0.75).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn classes_are_statistically_separable() {
        // The mean projected signal must differ between classes on at
        // least a few features, otherwise no model could learn anything.
        let d = generate(&SyntheticConfig {
            noise: 0.5,
            ..SyntheticConfig::small(4)
        });
        let m = d.num_features();
        let mut mean_pos = vec![0.0f64; m];
        let mut mean_neg = vec![0.0f64; m];
        for (row, label) in d.features.iter().zip(&d.labels) {
            let target = if *label == Label::Illicit {
                &mut mean_pos
            } else {
                &mut mean_neg
            };
            for (t, x) in target.iter_mut().zip(row) {
                *t += x;
            }
        }
        for t in &mut mean_pos {
            *t /= d.num_illicit() as f64;
        }
        for t in &mut mean_neg {
            *t /= d.num_licit() as f64;
        }
        // Not every feature needs to separate, but the joint signal must
        // be nonzero.
        let gap: f64 = mean_pos
            .iter()
            .zip(&mean_neg)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(gap > 0.05, "class mean gap {gap} too small");
    }

    #[test]
    fn default_matches_elliptic_schema() {
        let cfg = SyntheticConfig::default();
        assert_eq!(cfg.num_features, 165);
        assert_eq!(cfg.num_illicit, 4_545);
        assert_eq!(cfg.num_licit, 42_019);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
