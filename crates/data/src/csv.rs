//! Minimal CSV loader so a real dataset (e.g. the preprocessed Elliptic
//! Bitcoin CSV) can be dropped in place of the synthetic generator.
//!
//! Expected format: one sample per line, `label,f1,f2,...,fm`, where the
//! label field is `1`/`illicit` for the positive class and anything else
//! for the negative class. Lines starting with `#` and a single optional
//! header line are skipped.

use crate::dataset::{Dataset, Label};
use std::io::BufRead;
use std::path::Path;

/// Errors produced by the CSV loader.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::Parse { line, message } => {
                write!(f, "csv parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses a label field.
fn parse_label(field: &str) -> Label {
    match field.trim().to_ascii_lowercase().as_str() {
        "1" | "illicit" | "+1" => Label::Illicit,
        _ => Label::Licit,
    }
}

/// Loads a dataset from CSV text.
pub fn parse_csv(reader: impl BufRead) -> Result<Dataset, CsvError> {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut width: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',');
        let label_field = fields.next().unwrap_or_default();
        let row: Result<Vec<f64>, _> = fields.map(|f| f.trim().parse::<f64>()).collect();
        let row = match row {
            Ok(r) => r,
            Err(e) => {
                // Allow exactly one non-numeric line as a header.
                if features.is_empty() && width.is_none() {
                    continue;
                }
                return Err(CsvError::Parse {
                    line: idx + 1,
                    message: format!("bad feature value: {e}"),
                });
            }
        };
        if row.is_empty() {
            return Err(CsvError::Parse {
                line: idx + 1,
                message: "no feature columns".into(),
            });
        }
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => {
                return Err(CsvError::Parse {
                    line: idx + 1,
                    message: format!("expected {w} features, found {}", row.len()),
                });
            }
            _ => {}
        }
        labels.push(parse_label(label_field));
        features.push(row);
    }
    Ok(Dataset::new(features, labels))
}

/// Loads a dataset from a CSV file on disk.
pub fn load_csv(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(path)?;
    parse_csv(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_csv() {
        let text = "1,0.5,1.5\n0,0.1,0.2\nillicit,1.0,1.0\n";
        let d = parse_csv(Cursor::new(text)).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_illicit(), 2);
        assert_eq!(d.features[0], vec![0.5, 1.5]);
    }

    #[test]
    fn skips_comments_blank_lines_and_header() {
        let text = "# comment\nlabel,f1,f2\n\n1,0.5,1.5\n0,0.1,0.2\n";
        let d = parse_csv(Cursor::new(text)).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "1,0.5,1.5\n0,0.1\n";
        let err = parse_csv(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_numbers_after_data() {
        let text = "1,0.5\n0,abc\n";
        let err = parse_csv(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, CsvError::Parse { .. }));
    }

    #[test]
    fn label_aliases() {
        assert_eq!(parse_label("1"), Label::Illicit);
        assert_eq!(parse_label("Illicit"), Label::Illicit);
        assert_eq!(parse_label("+1"), Label::Illicit);
        assert_eq!(parse_label("0"), Label::Licit);
        assert_eq!(parse_label("licit"), Label::Licit);
        assert_eq!(parse_label("2"), Label::Licit);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qk_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        std::fs::write(&path, "1,0.3,0.7\n0,1.9,0.1\n").unwrap();
        let d = load_csv(&path).unwrap();
        assert_eq!(d.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
