//! Labeled dataset container.

use serde::{Deserialize, Serialize};

/// Binary class labels. The paper's task is illicit-vs-licit transaction
/// classification; we keep those names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// Positive class (4,545 of 46,564 samples in the Elliptic dataset).
    Illicit,
    /// Negative class.
    Licit,
}

impl Label {
    /// `+1` for illicit, `-1` for licit — the SVM convention.
    pub fn sign(self) -> f64 {
        match self {
            Label::Illicit => 1.0,
            Label::Licit => -1.0,
        }
    }

    /// From an SVM-side sign.
    pub fn from_sign(v: f64) -> Self {
        if v > 0.0 {
            Label::Illicit
        } else {
            Label::Licit
        }
    }
}

/// A dense labeled dataset: `n` rows of `m` features.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major feature matrix: `features[i]` is sample `i`.
    pub features: Vec<Vec<f64>>,
    /// One label per row.
    pub labels: Vec<Label>,
}

impl Dataset {
    /// Creates a dataset, checking row consistency.
    ///
    /// # Panics
    /// Panics if rows have inconsistent widths or counts mismatch.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<Label>) -> Self {
        assert_eq!(features.len(), labels.len(), "row/label count mismatch");
        if let Some(first) = features.first() {
            let m = first.len();
            assert!(
                features.iter().all(|row| row.len() == m),
                "inconsistent feature widths"
            );
        }
        Dataset { features, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample (0 if empty).
    pub fn num_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Count of illicit (positive) samples.
    pub fn num_illicit(&self) -> usize {
        self.labels.iter().filter(|l| **l == Label::Illicit).count()
    }

    /// Count of licit (negative) samples.
    pub fn num_licit(&self) -> usize {
        self.len() - self.num_illicit()
    }

    /// Labels as `+1 / -1` signs.
    pub fn label_signs(&self) -> Vec<f64> {
        self.labels.iter().map(|l| l.sign()).collect()
    }

    /// Keeps only the first `k` features of every row (the paper
    /// "down-selects and seeds to a specified dimension").
    pub fn truncate_features(&self, k: usize) -> Dataset {
        assert!(
            k <= self.num_features(),
            "cannot keep {k} of {} features",
            self.num_features()
        );
        Dataset {
            features: self.features.iter().map(|row| row[..k].to_vec()).collect(),
            labels: self.labels.clone(),
        }
    }

    /// Selects rows by index.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![Label::Illicit, Label::Licit, Label::Illicit],
        )
    }

    #[test]
    fn counts() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_illicit(), 2);
        assert_eq!(d.num_licit(), 1);
    }

    #[test]
    fn signs() {
        assert_eq!(Label::Illicit.sign(), 1.0);
        assert_eq!(Label::Licit.sign(), -1.0);
        assert_eq!(Label::from_sign(0.7), Label::Illicit);
        assert_eq!(Label::from_sign(-0.2), Label::Licit);
        assert_eq!(toy().label_signs(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn truncate_features_keeps_prefix() {
        let d = toy().truncate_features(1);
        assert_eq!(d.num_features(), 1);
        assert_eq!(d.features[1], vec![3.0]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn select_rows() {
        let d = toy().select(&[2, 0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.features[0], vec![5.0, 6.0]);
        assert_eq!(d.labels[1], Label::Illicit);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::new(vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_rows_panic() {
        Dataset::new(
            vec![vec![1.0], vec![1.0, 2.0]],
            vec![Label::Licit, Label::Licit],
        );
    }
}
