//! Property-based tests of the data pipeline: scaling bounds, split
//! arithmetic, subsample balance, generator determinism.

use proptest::prelude::*;
use qk_data::{
    balanced_subsample, generate, prepare_experiment, stratified_split, Scaler, SyntheticConfig,
};

fn small_config() -> impl Strategy<Value = SyntheticConfig> {
    (2usize..20, 20usize..60, 20usize..60, 0.2f64..3.0, 0u64..500).prop_map(
        |(features, illicit, licit, noise, seed)| SyntheticConfig {
            num_features: features,
            num_illicit: illicit,
            num_licit: licit,
            latent_dim: 6,
            noise,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator produces exactly the requested shape, with finite
    /// features, deterministically.
    #[test]
    fn generator_shape_and_determinism(cfg in small_config()) {
        let a = generate(&cfg);
        prop_assert_eq!(a.len(), cfg.num_illicit + cfg.num_licit);
        prop_assert_eq!(a.num_features(), cfg.num_features);
        prop_assert_eq!(a.num_illicit(), cfg.num_illicit);
        prop_assert!(a.features.iter().flatten().all(|x| x.is_finite()));
        let b = generate(&cfg);
        prop_assert_eq!(a.features, b.features);
    }

    /// Scaler output is always inside the feature-map domain (0, 2), on
    /// train data and on arbitrary unseen rows.
    #[test]
    fn scaler_bounds(cfg in small_config(), probe in prop::collection::vec(-1e3f64..1e3, 2..20)) {
        let data = generate(&cfg);
        let scaler = Scaler::fit(&data);
        let t = scaler.transform(&data);
        prop_assert!(t.features.iter().flatten().all(|&x| (0.0..=2.0).contains(&x)));
        let mut row = probe;
        row.resize(cfg.num_features, 0.5);
        let out = scaler.transform_row(&row);
        prop_assert!(out.iter().all(|&x| (0.0..=2.0).contains(&x)));
    }

    /// Stratified splits partition the data and roughly respect the
    /// requested fraction per class.
    #[test]
    fn split_partition(cfg in small_config(), frac in 0.5f64..0.9, seed in 0u64..100) {
        let data = generate(&cfg);
        let split = stratified_split(&data, frac, seed);
        prop_assert_eq!(split.train.len() + split.test.len(), data.len());
        // Per-class counts deviate by at most 1 from the rounded target.
        let target_illicit = (cfg.num_illicit as f64 * frac).round() as isize;
        prop_assert!((split.train.num_illicit() as isize - target_illicit).abs() <= 1);
        let target_licit = (cfg.num_licit as f64 * frac).round() as isize;
        prop_assert!((split.train.num_licit() as isize - target_licit).abs() <= 1);
    }

    /// Balanced subsamples are exactly balanced and drawn without
    /// replacement.
    #[test]
    fn subsample_balance(cfg in small_config(), seed in 0u64..100) {
        let data = generate(&cfg);
        let n = 2 * cfg.num_illicit.min(cfg.num_licit).min(20);
        let sub = balanced_subsample(&data, n, seed);
        prop_assert_eq!(sub.len(), n);
        prop_assert_eq!(sub.num_illicit(), n / 2);
        // Without replacement: all rows distinct (generator rows are
        // continuous-valued, collisions have probability zero).
        for i in 0..sub.len() {
            for j in (i + 1)..sub.len() {
                prop_assert_ne!(&sub.features[i], &sub.features[j]);
            }
        }
    }

    /// The end-to-end preparation yields balanced train data in-domain
    /// with the requested feature count.
    #[test]
    fn prepare_invariants(cfg in small_config(), seed in 0u64..100) {
        let data = generate(&cfg);
        let n = 2 * cfg.num_illicit.min(cfg.num_licit).min(16);
        let k = 1 + cfg.num_features / 2;
        let split = prepare_experiment(&data, n, k, seed);
        prop_assert_eq!(split.train.num_features(), k);
        prop_assert_eq!(split.test.num_features(), k);
        prop_assert_eq!(split.train.len() + split.test.len(), n);
        prop_assert!(split.train.features.iter().flatten().all(|&x| (0.0..=2.0).contains(&x)));
        prop_assert!(split.test.features.iter().flatten().all(|&x| (0.0..=2.0).contains(&x)));
    }
}
