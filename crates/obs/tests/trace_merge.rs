//! Property-based checks of the trace-shard merge: the canonical
//! `(rank, lane, seq)` order makes merging insensitive to arrival
//! order, shard grouping, and discovery order — and everything derived
//! from the merged timeline (Chrome export, analysis) deterministic.

use proptest::prelude::*;
use qk_obs::trace::{analyze, chrome_trace_json, merge_events, read_shards, validate_chrome_trace};
use qk_obs::{TraceEvent, TracePhase};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Builds a plausible timeline from raw tuples: seq numbers are
/// assigned densely per `(rank, lane)` in tuple order, exactly as a
/// live `Tracer` would.
fn timeline(raw: &[(u32, u32, usize, u64, u64, i64)]) -> Vec<TraceEvent> {
    let mut seqs: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    raw.iter()
        .map(|&(rank, lane, phase, t_us, dur_us, arg0)| {
            let seq = seqs.entry((rank, lane)).or_insert(0);
            let ev = TraceEvent {
                rank,
                lane,
                seq: *seq,
                phase: TracePhase::ALL[phase % TracePhase::ALL.len()],
                t_us,
                dur_us,
                arg0,
                arg1: -1,
            };
            *seq += 1;
            ev
        })
        .collect()
}

/// Deterministic Fisher-Yates driven by a test-supplied seed (no
/// ambient randomness in the test body either).
fn shuffle(events: &mut [TraceEvent], mut seed: u64) {
    for i in (1..events.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        events.swap(i, (seed % (i as u64 + 1)) as usize);
    }
}

/// A unique scratch directory per proptest case.
fn scratch_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qk_trace_merge_{}_{id}", std::process::id()))
}

fn raw_events() -> impl Strategy<Value = Vec<(u32, u32, usize, u64, u64, i64)>> {
    prop::collection::vec(
        (
            0u32..4,
            0u32..3,
            0usize..TracePhase::ALL.len(),
            0u64..100_000,
            0u64..10_000,
            -1i64..64,
        ),
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging any permutation of the same events yields the same
    /// canonical order.
    #[test]
    fn merge_is_permutation_invariant(raw in raw_events(), seed in any::<u64>()) {
        let mut canonical = timeline(&raw);
        merge_events(&mut canonical);
        let mut permuted = timeline(&raw);
        shuffle(&mut permuted, seed);
        merge_events(&mut permuted);
        prop_assert_eq!(&permuted, &canonical);
    }

    /// Round-tripping through on-disk shards — with events scattered
    /// into per-rank files in permuted order — reproduces the same
    /// merged timeline, and the same Chrome export and analysis bytes.
    #[test]
    fn shard_roundtrip_is_order_insensitive(raw in raw_events(), seed in any::<u64>()) {
        let mut canonical = timeline(&raw);
        merge_events(&mut canonical);

        let mut permuted = timeline(&raw);
        shuffle(&mut permuted, seed);
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let mut by_rank: BTreeMap<u32, String> = BTreeMap::new();
        for ev in &permuted {
            let shard = by_rank.entry(ev.rank).or_default();
            shard.push_str(&ev.to_jsonl());
            shard.push('\n');
        }
        for (rank, body) in &by_rank {
            std::fs::write(dir.join(format!("trace_rank_{rank}.jsonl")), body)
                .expect("shard write");
        }
        let merged = read_shards(&dir).expect("shards readable");
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&merged, &canonical);

        // Everything derived from the merge is equally deterministic.
        prop_assert_eq!(
            chrome_trace_json(&merged),
            chrome_trace_json(&canonical)
        );
        prop_assert_eq!(
            analyze(&merged).to_json(),
            analyze(&canonical).to_json()
        );
    }

    /// The Chrome export of any merged timeline passes the schema gate.
    #[test]
    fn chrome_export_is_always_schema_valid(raw in raw_events()) {
        let mut events = timeline(&raw);
        merge_events(&mut events);
        let json = chrome_trace_json(&events);
        prop_assert!(validate_chrome_trace(&json).is_ok(), "{:?}", validate_chrome_trace(&json));
    }
}
