//! # qk-obs
//!
//! Unified observability for the quantum-kernel pipeline: scoped
//! profiling spans, a central metrics registry, a durable JSONL event
//! journal, and one exportable [`ObsReport`]. Built with zero external
//! dependencies so every crate — including the determinism-pinned
//! kernels' callers — can afford to depend on it.
//!
//! * [`span`] — RAII spans with per-thread stacks, parent/child
//!   attribution, and a deterministic flamegraph-style rollup.
//! * [`registry`] — named counters/gauges/log-bucket histograms;
//!   `qk-gram`, `qk-serve` and `qk-svm` register into one table.
//! * [`journal`] — bounded JSONL lifecycle-event sink with the
//!   checkpoint store's temp+rename durability and a
//!   timestamp-stripping comparator for determinism tests.
//! * [`report`] — `ObsReport` (`Serialize + Display`) plus the plain
//!   Rust JSON-schema gate used by CI.
//! * [`json`] — a minimal JSON parser (the vendored serde shim only
//!   serializes), used by the schema gate and journal tests.
//! * [`trace`] — globally-mergeable trace timelines: per-lane logical
//!   sequence numbers, per-rank shards, Chrome trace-event export, and
//!   a deterministic utilization / critical-path analyzer.
//!
//! ## Determinism boundary
//!
//! Instrumentation lives *outside* the bitwise determinism contract:
//! all clock reads in the workspace's observability path live in this
//! crate, in a short list of allowlisted functions
//! (`SpanGuard::enter`, `Journal::open`, `Journal::flush`,
//! `ObsReport::write_json`, `Tracer::new`, `Tracer::now_us`,
//! `Tracer::write_shards`) audited to never feed a computed kernel
//! value. The `obs-off` feature compiles spans, the journal and trace
//! recording down to no-ops; counters, gauges and histograms stay
//! live because engine reports are built from them.
//!
//! ## Quickstart
//!
//! ```
//! use qk_obs::Obs;
//!
//! let obs = Obs::new();
//! {
//!     let _job = obs.span("job");
//!     let _tile = obs.span("tile");
//!     obs.counter("demo.tiles").inc();
//! }
//! let report = obs.report("demo");
//! println!("{report}");
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod journal;
pub mod json;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

use std::sync::Arc;

pub use hist::{HistSnapshot, LogHistogram, BUCKETS};
pub use journal::{strip_timestamps, stripped_lines, EventBuilder, Journal};
pub use json::Json;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, RegistrySnapshot};
pub use report::{validate_report_json, ObsReport};
pub use span::{SpanEntry, SpanGuard, SpanRecorder};
pub use trace::{TraceAnalysis, TraceEvent, TraceLane, TracePhase, TraceSpan, Tracer};

#[derive(Debug, Default)]
struct ObsInner {
    registry: MetricsRegistry,
    spans: Arc<SpanRecorder>,
}

/// Shared observability handle: one registry + one span recorder.
/// Cheap to clone; every component holding a clone reports into the
/// same [`ObsReport`].
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl Obs {
    /// A fresh, empty observability context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.registry.counter(name)
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.registry.gauge(name)
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner.registry.histogram(name)
    }

    /// Open a span named `name`, nested under the current thread's
    /// innermost open span. Bind the guard: `let _g = obs.span("x");`.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard::enter(&self.inner.spans, name)
    }

    /// Deterministic rollup of every span closed so far.
    pub fn span_rollup(&self) -> Vec<SpanEntry> {
        self.inner.spans.rollup()
    }

    /// Snapshot of every registered instrument.
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        self.inner.registry.snapshot()
    }

    /// Build the unified report under a component name. Chaos/recovery
    /// counters are mirrored into the report's `robustness` section so
    /// one artifact covers perf and fault-tolerance together.
    pub fn report(&self, name: &str) -> ObsReport {
        let snap = self.registry_snapshot();
        let robustness = report::extract_robustness(&snap.counters);
        ObsReport {
            name: name.to_string(),
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap.histograms,
            spans: self.span_rollup(),
            robustness,
        }
    }
}

/// Open a scoped span on an [`Obs`] handle: `span!(obs, "tile_compute")`.
/// Expands to `obs.span(name)`; bind the result to keep the span open.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_instruments_and_spans() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.counter("shared.hits").add(3);
        obs.counter("shared.hits").inc();
        assert_eq!(obs.counter("shared.hits").get(), 4);
        {
            let _g = span!(clone, "work");
        }
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(obs.span_rollup().len(), 1);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_disables_spans_but_keeps_metrics() {
        let obs = Obs::new();
        {
            let _g = obs.span("invisible");
        }
        obs.counter("still.live").inc();
        assert!(obs.span_rollup().is_empty());
        assert_eq!(obs.counter("still.live").get(), 1);
    }

    #[test]
    fn report_combines_registry_and_spans() {
        let obs = Obs::new();
        obs.counter("c.one").inc();
        obs.gauge("g.two").set(2);
        obs.histogram("h.three").record(30);
        {
            let _g = obs.span("root");
        }
        let report = obs.report("unit");
        assert_eq!(report.name, "unit");
        assert_eq!(report.counters["c.one"], 1);
        assert_eq!(report.gauges["g.two"], 2);
        assert_eq!(report.histograms["h.three"].count, 1);
        report::validate_report_json(&report.to_json()).unwrap();
    }
}
