//! Bounded, lock-brief JSONL event journal.
//!
//! Lifecycle events (job start/resume, tile computed/restored,
//! checkpoint writes, cache evictions, SMO milestones) append one JSON
//! object per line. The journal follows the checkpoint store's
//! durability discipline: flushes write the whole journal to a
//! pid-tagged temp file in the same directory and `rename` it into
//! place, so a SIGKILL mid-flush leaves either the previous journal or
//! the new one — never a torn file. Reopening an existing journal
//! appends, with the sequence counter continuing where the previous
//! process stopped, so a killed-and-resumed run leaves one auditable
//! trail.
//!
//! Events must carry only *deterministic* fields (indices, counts,
//! fingerprints — never filesystem paths or measured durations): two
//! identical runs then produce journals that are byte-identical after
//! [`strip_timestamps`], which the integration tests pin.
//!
//! Lock order within this module is `flush` → `state`, and `state` is
//! never held across I/O.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Default cap on retained events; past it the newest events are
/// counted as dropped and a `journal_truncated` marker line is
/// appended on flush.
pub const DEFAULT_MAX_EVENTS: usize = 16_384;

#[derive(Debug, Default)]
struct State {
    lines: Vec<String>,
    dropped: u64,
    pending: usize,
}

/// Append-only JSONL event sink with atomic temp+rename flushes.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    epoch: Instant,
    max_events: usize,
    flush_every: usize,
    flush: Mutex<()>,
    state: Mutex<State>,
}

impl Journal {
    /// Open (or reopen) the journal at `path`, creating parent
    /// directories. Existing event lines are kept, so a resumed run
    /// appends to the prior run's trail.
    pub fn open(path: &Path) -> io::Result<Journal> {
        Self::open_bounded(path, DEFAULT_MAX_EVENTS)
    }

    /// [`Journal::open`] with an explicit retained-event cap.
    pub fn open_bounded(path: &Path, max_events: usize) -> io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut lines = Vec::new();
        if path.exists() {
            for line in fs::read_to_string(path)?.lines() {
                // The truncation marker is regenerated on flush; keeping
                // it as a data line would double-count it after reopen.
                if !line.trim().is_empty() && !line.contains("\"event\":\"journal_truncated\"") {
                    lines.push(line.to_string());
                }
            }
        }
        Ok(Journal {
            path: path.to_path_buf(),
            epoch: Instant::now(),
            max_events,
            flush_every: 1,
            flush: Mutex::new(()),
            state: Mutex::new(State {
                lines,
                dropped: 0,
                pending: 0,
            }),
        })
    }

    /// Path this journal flushes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Start building an event named `name`. Call
    /// [`EventBuilder::log`] to record it.
    pub fn event<'a>(&'a self, name: &str) -> EventBuilder<'a> {
        let mut fields = String::new();
        write_json_str(&mut fields, name);
        EventBuilder {
            journal: self,
            fields,
        }
    }

    /// Number of retained events (excludes dropped ones).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("journal state lock poisoned")
            .lines
            .len()
    }

    /// True when no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped past the retention cap since open.
    pub fn dropped(&self) -> u64 {
        self.state
            .lock()
            .expect("journal state lock poisoned")
            .dropped
    }

    #[cfg(not(feature = "obs-off"))]
    fn append(&self, line: String) {
        let do_flush;
        {
            let mut st = self.state.lock().expect("journal state lock poisoned");
            if st.lines.len() >= self.max_events {
                st.dropped += 1;
            } else {
                st.lines.push(line);
            }
            st.pending += 1;
            do_flush = st.pending >= self.flush_every;
        }
        if do_flush {
            // Best-effort: a full disk must not take the job down.
            let _ = self.flush();
        }
    }

    /// Durably write the journal: snapshot under a brief state lock,
    /// then temp+rename outside it. Serialized by the flush lock.
    #[cfg(not(feature = "obs-off"))]
    pub fn flush(&self) -> io::Result<()> {
        let _serialize = self.flush.lock().expect("journal flush lock poisoned");
        let text = {
            let mut st = self.state.lock().expect("journal state lock poisoned");
            st.pending = 0;
            let mut text = String::with_capacity(st.lines.iter().map(|l| l.len() + 1).sum());
            for line in &st.lines {
                text.push_str(line);
                text.push('\n');
            }
            if st.dropped > 0 {
                let _ = writeln!(
                    text,
                    "{{\"event\":\"journal_truncated\",\"dropped\":{}}}",
                    st.dropped
                );
            }
            text
        };
        let file_name = self
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("journal");
        let tmp = self
            .path
            .with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &self.path)
    }

    /// No-op under `obs-off`.
    #[cfg(feature = "obs-off")]
    pub fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Incremental event construction; fields serialize in call order.
#[derive(Debug)]
pub struct EventBuilder<'a> {
    journal: &'a Journal,
    fields: String,
}

impl EventBuilder<'_> {
    /// Attach an unsigned integer field.
    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        let _ = write!(self.fields, ",\"{key}\":{value}");
        self
    }

    /// Attach a signed integer field.
    pub fn field_i64(mut self, key: &str, value: i64) -> Self {
        let _ = write!(self.fields, ",\"{key}\":{value}");
        self
    }

    /// Attach a boolean field.
    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        let _ = write!(self.fields, ",\"{key}\":{value}");
        self
    }

    /// Attach a string field (JSON-escaped).
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        let _ = write!(self.fields, ",\"{key}\":");
        write_json_str(&mut self.fields, value);
        self
    }

    /// Record the event. The sequence number and `t_us` (microseconds
    /// since journal open) are assigned here.
    #[cfg(not(feature = "obs-off"))]
    pub fn log(self) {
        let t_us = u64::try_from(self.journal.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let seq = {
            let st = self
                .journal
                .state
                .lock()
                .expect("journal state lock poisoned");
            st.lines.len() as u64 + st.dropped
        };
        let line = format!(
            "{{\"seq\":{seq},\"t_us\":{t_us},\"event\":{}}}",
            self.fields
        );
        self.journal.append(line);
    }

    /// No-op under `obs-off`.
    #[cfg(feature = "obs-off")]
    pub fn log(self) {}
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Zero out the `t_us` value in a journal line, leaving every
/// deterministic field intact. Two identical runs must produce
/// identical journals under this transform — the comparator the
/// integration tests pin.
pub fn strip_timestamps(line: &str) -> String {
    const KEY: &str = "\"t_us\":";
    match line.find(KEY) {
        None => line.to_string(),
        Some(at) => {
            let digits_start = at + KEY.len();
            let digits_end = line[digits_start..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|off| digits_start + off)
                .unwrap_or(line.len());
            format!("{}0{}", &line[..digits_start], &line[digits_end..])
        }
    }
}

/// Read a journal file as timestamp-stripped lines, ready for
/// equality comparison across runs.
pub fn stripped_lines(path: &Path) -> io::Result<Vec<String>> {
    Ok(fs::read_to_string(path)?
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(strip_timestamps)
        .collect())
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qk_obs_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn events_round_trip_as_json_lines() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("j.jsonl");
        let j = Journal::open(&path).unwrap();
        j.event("job_start")
            .field_u64("rows", 48)
            .field_str("kind", "train")
            .log();
        j.event("tile_computed")
            .field_u64("bi", 0)
            .field_u64("bj", 1)
            .log();
        j.flush().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.get("seq").and_then(|s| s.as_u64()), Some(i as u64));
            assert!(v.get("t_us").is_some());
        }
        assert!(lines[0].contains("\"event\":\"job_start\""));
        assert!(lines[1].contains("\"bj\":1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_appends_with_continuing_seq() {
        let dir = tmp_dir("reopen");
        let path = dir.join("j.jsonl");
        {
            let j = Journal::open(&path).unwrap();
            j.event("first").log();
            j.event("second").log();
        }
        {
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.len(), 2);
            j.event("third").log();
        }
        let text = fs::read_to_string(&path).unwrap();
        let seqs: Vec<u64> = text
            .lines()
            .map(|l| {
                crate::json::parse(l)
                    .unwrap()
                    .get("seq")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, [0, 1, 2]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_cap_drops_newest_and_marks_truncation() {
        let dir = tmp_dir("bounded");
        let path = dir.join("j.jsonl");
        let j = Journal::open_bounded(&path, 3).unwrap();
        for i in 0..5u64 {
            j.event("e").field_u64("i", i).log();
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        j.flush().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text
            .lines()
            .last()
            .unwrap()
            .contains("\"journal_truncated\""));
        assert!(text.contains("\"dropped\":2"));
        // No torn temp files left behind.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(stray.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn strip_timestamps_zeroes_only_t_us() {
        let line = "{\"seq\":7,\"t_us\":123456,\"event\":\"tile_computed\",\"bi\":2}";
        assert_eq!(
            strip_timestamps(line),
            "{\"seq\":7,\"t_us\":0,\"event\":\"tile_computed\",\"bi\":2}"
        );
        let no_ts = "{\"event\":\"journal_truncated\",\"dropped\":2}";
        assert_eq!(strip_timestamps(no_ts), no_ts);
    }

    #[test]
    fn identical_event_streams_compare_equal_after_stripping() {
        let dir = tmp_dir("compare");
        for run in ["a", "b"] {
            let j = Journal::open(&dir.join(format!("{run}.jsonl"))).unwrap();
            j.event("job_start").field_u64("rows", 10).log();
            for i in 0..4u64 {
                j.event("tile_computed").field_u64("bi", i).log();
                std::thread::sleep(std::time::Duration::from_millis(if run == "a" {
                    1
                } else {
                    3
                }));
            }
            j.event("job_end").field_str("status", "complete").log();
        }
        let a = stripped_lines(&dir.join("a.jsonl")).unwrap();
        let b = stripped_lines(&dir.join("b.jsonl")).unwrap();
        assert_eq!(a, b);
        assert_ne!(
            fs::read_to_string(dir.join("a.jsonl")).unwrap(),
            fs::read_to_string(dir.join("b.jsonl")).unwrap(),
            "raw journals should differ in timestamps (sanity check)"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaped_strings_survive_the_parser() {
        let dir = tmp_dir("escape");
        let path = dir.join("j.jsonl");
        let j = Journal::open(&path).unwrap();
        j.event("note")
            .field_str("msg", "quote \" slash \\ tab\tnewline\n")
            .log();
        j.flush().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let v = crate::json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            v.get("msg").and_then(|m| m.as_str()),
            Some("quote \" slash \\ tab\tnewline\n")
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
