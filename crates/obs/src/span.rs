//! Scoped profiling spans with per-thread stacks and a deterministic
//! flamegraph-style rollup.
//!
//! A [`SpanGuard`] measures the wall time between construction and drop
//! (monotonic-instant convention: `Instant` only, never `SystemTime`).
//! Each thread keeps its own stack of open spans, so a span opened
//! inside another nests under it: the child's path is
//! `parent_path/child_name`, and the parent's *self* time excludes time
//! spent in children. Aggregation merges identically named paths across
//! threads and sorts by path, so the exported rollup is deterministic
//! even when worker counts vary.
//!
//! With the `obs-off` feature the guard is a fieldless no-op and the
//! rollup is empty — zero hot-path overhead, pinned at compile time.

use std::sync::Mutex;
use std::time::Duration;

use serde::Serialize;

#[cfg(not(feature = "obs-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "obs-off"))]
use std::sync::Arc;
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

#[derive(Debug, Default, Clone, Copy)]
struct SpanStat {
    count: u64,
    total: Duration,
    child: Duration,
}

/// Cross-thread accumulator for closed spans. One per [`crate::Obs`].
#[derive(Debug, Default)]
pub struct SpanRecorder {
    stats: Mutex<std::collections::BTreeMap<String, SpanStat>>,
}

#[cfg(not(feature = "obs-off"))]
struct Frame {
    path: String,
    child: Duration,
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

impl SpanRecorder {
    /// Deterministic rollup of every closed span, sorted by path.
    pub fn rollup(&self) -> Vec<SpanEntry> {
        let stats = self.stats.lock().expect("span stats lock poisoned");
        stats
            .iter()
            .map(|(path, s)| SpanEntry {
                path: path.clone(),
                count: s.count,
                total_us: u64::try_from(s.total.as_micros()).unwrap_or(u64::MAX),
                self_us: u64::try_from(s.total.saturating_sub(s.child).as_micros())
                    .unwrap_or(u64::MAX),
            })
            .collect()
    }

    #[cfg(not(feature = "obs-off"))]
    fn merge(&self, path: String, elapsed: Duration, child: Duration) {
        let mut stats = self.stats.lock().expect("span stats lock poisoned");
        let s = stats.entry(path).or_default();
        s.count += 1;
        s.total += elapsed;
        s.child += child;
    }
}

/// One aggregated row of the span rollup.
#[derive(Debug, Clone, Serialize)]
pub struct SpanEntry {
    /// Slash-joined span path, e.g. `gram_worker/tile_compute`.
    pub path: String,
    /// How many times a span with this path closed.
    pub count: u64,
    /// Total wall time across all instances, microseconds.
    pub total_us: u64,
    /// Wall time excluding child spans, microseconds.
    pub self_us: u64,
}

/// RAII span: measures wall time from construction to drop and feeds
/// the owning recorder. Guards on one thread must drop in LIFO order
/// (the natural order for scoped `let _g = obs.span(..)` bindings).
#[cfg(not(feature = "obs-off"))]
#[must_use = "a span measures the scope it is bound to; bind it with `let _g = ...`"]
#[derive(Debug)]
pub struct SpanGuard {
    rec: Arc<SpanRecorder>,
    start: Instant,
}

#[cfg(not(feature = "obs-off"))]
impl SpanGuard {
    pub(crate) fn enter(rec: &Arc<SpanRecorder>, name: &str) -> SpanGuard {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{}", parent.path, name),
                None => name.to_string(),
            };
            stack.push(Frame {
                path,
                child: Duration::ZERO,
            });
        });
        SpanGuard {
            rec: Arc::clone(rec),
            start: Instant::now(),
        }
    }
}

#[cfg(not(feature = "obs-off"))]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let frame = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack
                .pop()
                .expect("span stack underflow: guards dropped out of order");
            if let Some(parent) = stack.last_mut() {
                parent.child += elapsed;
            }
            frame
        });
        self.rec.merge(frame.path, elapsed, frame.child);
    }
}

/// No-op span guard: the `obs-off` build compiles every `span()` call
/// down to the construction of this empty type.
#[cfg(feature = "obs-off")]
#[must_use = "a span measures the scope it is bound to; bind it with `let _g = ...`"]
#[derive(Debug)]
pub struct SpanGuard {
    _priv: (),
}

#[cfg(feature = "obs-off")]
impl SpanGuard {
    #[inline(always)]
    pub(crate) fn enter(_rec: &std::sync::Arc<SpanRecorder>, _name: &str) -> SpanGuard {
        SpanGuard { _priv: () }
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    fn recorder() -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder::default())
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let rec = recorder();
        {
            let _outer = SpanGuard::enter(&rec, "job");
            {
                let _inner = SpanGuard::enter(&rec, "tile");
            }
            {
                let _inner = SpanGuard::enter(&rec, "tile");
            }
        }
        let rollup = rec.rollup();
        let paths: Vec<&str> = rollup.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["job", "job/tile"]);
        assert_eq!(rollup[1].count, 2);
    }

    #[test]
    fn self_time_excludes_children() {
        let rec = recorder();
        {
            let _outer = SpanGuard::enter(&rec, "outer");
            let _inner = SpanGuard::enter(&rec, "inner");
            std::thread::sleep(Duration::from_millis(12));
        }
        let rollup = rec.rollup();
        let outer = rollup.iter().find(|e| e.path == "outer").unwrap();
        let inner = rollup.iter().find(|e| e.path == "outer/inner").unwrap();
        assert!(
            inner.total_us >= 10_000,
            "inner span saw the sleep: {inner:?}"
        );
        assert!(outer.total_us >= inner.total_us);
        // The outer span did nothing but host the inner one.
        assert!(
            outer.self_us <= outer.total_us - inner.total_us + 5_000,
            "outer self time should exclude the child: {outer:?} vs {inner:?}"
        );
    }

    #[test]
    fn threads_keep_independent_stacks() {
        let rec = recorder();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    let _w = SpanGuard::enter(&rec, "worker");
                    for _ in 0..5 {
                        let _t = SpanGuard::enter(&rec, "step");
                    }
                });
            }
        });
        let rollup = rec.rollup();
        let worker = rollup.iter().find(|e| e.path == "worker").unwrap();
        let step = rollup.iter().find(|e| e.path == "worker/step").unwrap();
        assert_eq!(worker.count, 3);
        assert_eq!(step.count, 15);
    }

    #[test]
    fn rollup_is_sorted_by_path() {
        let rec = recorder();
        for name in ["zeta", "alpha", "mid"] {
            let _g = SpanGuard::enter(&rec, name);
        }
        let paths: Vec<String> = rec.rollup().into_iter().map(|e| e.path).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }
}
