//! Central metrics registry: named counters, gauges, and log-bucket
//! histograms that every crate registers into.
//!
//! Handles are cheap `Arc` clones; the hot path touches a single atomic
//! (counters/gauges) or a short mutex (histograms). Registration is
//! get-or-create by name, so independent components that agree on a
//! name share one instrument. Snapshots use `BTreeMap`, keeping every
//! exported report deterministically ordered.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::hist::{HistSnapshot, LogHistogram};

/// Monotonically increasing `u64` metric handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the stored value to `n` if `n` is larger (high-water mark).
    pub fn record_max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Overwrite the stored value (job-start resets).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous-level metric handle (queue depths, balances).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the stored value.
    pub fn set(&self, n: i64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared log-bucket histogram handle; see [`crate::hist::LogHistogram`].
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<LogHistogram>>);

impl Histogram {
    /// Record one observation (brief internal lock).
    pub fn record(&self, value: u64) {
        self.0
            .lock()
            .expect("histogram lock poisoned")
            .record(value);
    }

    /// Point-in-time copy with the full bucket array.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.lock().expect("histogram lock poisoned").snapshot()
    }

    /// Conservative quantile of the live histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.lock().expect("histogram lock poisoned").quantile(q)
    }
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Name → instrument table. The registry lock covers registration and
/// snapshotting only; recording goes through the returned handles and
/// never touches it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Instruments>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Deterministically ordered snapshot of every registered instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("registry lock poisoned");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time values of every instrument in a [`MetricsRegistry`],
/// sorted by name.
#[derive(Debug, Clone, Serialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_one_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x.hits").get(), 5);
    }

    #[test]
    fn gauge_tracks_level() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("q.depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn counter_record_max_is_high_water() {
        let c = Counter::default();
        c.record_max(7);
        c.record_max(3);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").inc();
        reg.counter("a.first").add(2);
        reg.gauge("g.depth").set(3);
        reg.histogram("h.lat").record(100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(names, ["a.first", "b.second"]);
        assert_eq!(snap.counters["a.first"], 2);
        assert_eq!(snap.gauges["g.depth"], 3);
        assert_eq!(snap.histograms["h.lat"].count, 1);
    }

    #[test]
    fn handles_work_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
