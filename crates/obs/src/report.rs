//! `ObsReport`: the one serializable + displayable observability
//! artifact, combining the metrics registry snapshot with the span
//! rollup. Written by the gram engine, serve shutdown, and the bench
//! bins; validated structurally by the schema gate in `tests/`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use serde::Serialize;

use crate::hist::{HistSnapshot, BUCKETS};
use crate::json::{self, Json};
use crate::span::SpanEntry;

/// Counter-name suffixes that count injected faults and the recovery
/// work they triggered. Counters carrying one of these suffixes are
/// mirrored into [`ObsReport::robustness`].
pub const ROBUSTNESS_SUFFIXES: [&str; 7] = [
    "faults_injected",
    "retries",
    "tiles_quarantined",
    "workers_restarted",
    "requests_shed",
    "rows_recomputed",
    "resumes",
];

/// Mirror of every chaos/recovery counter in `counters`, keyed by the
/// full counter name. See [`ROBUSTNESS_SUFFIXES`].
pub fn extract_robustness(counters: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters
        .iter()
        .filter(|(name, _)| {
            ROBUSTNESS_SUFFIXES
                .iter()
                .any(|suffix| name.ends_with(suffix))
        })
        .map(|(name, v)| (name.clone(), *v))
        .collect()
}

/// Unified observability report: every registered instrument plus the
/// deterministic span rollup, under a component name.
#[derive(Debug, Clone, Serialize)]
pub struct ObsReport {
    /// Component that produced the report (e.g. `qk-gram`).
    pub name: String,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name (full bucket arrays).
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Flamegraph-style span rollup, sorted by path.
    pub spans: Vec<SpanEntry>,
    /// Chaos/recovery counters (faults injected, retries, quarantines,
    /// worker restarts, load shedding, row recomputes, warm resumes),
    /// mirrored from `counters` so one report covers perf and
    /// robustness.
    pub robustness: BTreeMap<String, u64>,
}

impl ObsReport {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Durably write the report: parent dirs created, pid-tagged temp
    /// file in the target directory, then `rename` into place.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("obs_report");
        let tmp = path.with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
        let mut text = self.to_json();
        text.push('\n');
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path)
    }
}

impl fmt::Display for ObsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "obs report [{}]", self.name)?;
        if !self.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "    {name:<32} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "  gauges:")?;
            for (name, v) in &self.gauges {
                writeln!(f, "    {name:<32} {v}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "  histograms:")?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "    {name:<32} n={} mean={:.1} p50={} p99={} max={}",
                    h.count,
                    h.mean,
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max
                )?;
            }
        }
        if !self.spans.is_empty() {
            writeln!(f, "  spans (total_us / self_us / count):")?;
            for s in &self.spans {
                writeln!(
                    f,
                    "    {:<40} {:>12} {:>12} {:>8}",
                    s.path, s.total_us, s.self_us, s.count
                )?;
            }
        }
        if !self.robustness.is_empty() {
            writeln!(f, "  robustness:")?;
            for (name, v) in &self.robustness {
                writeln!(f, "    {name:<32} {v}")?;
            }
        }
        Ok(())
    }
}

/// Structural schema check for a serialized [`ObsReport`] — the plain
/// Rust stand-in for a JSON-schema validator (no new deps). Returns a
/// description of the first violation.
pub fn validate_report_json(src: &str) -> Result<(), String> {
    let root = json::parse(src).map_err(|e| e.to_string())?;
    let obj = root.as_object().ok_or("report root must be an object")?;
    for key in [
        "name",
        "counters",
        "gauges",
        "histograms",
        "spans",
        "robustness",
    ] {
        if !obj.iter().any(|(k, _)| k == key) {
            return Err(format!("missing required field `{key}`"));
        }
    }
    let name = root
        .get("name")
        .and_then(Json::as_str)
        .ok_or("`name` must be a string")?;
    if name.is_empty() {
        return Err("`name` must be non-empty".to_string());
    }
    for (k, v) in root
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("`counters` must be an object")?
    {
        v.as_u64()
            .ok_or(format!("counter `{k}` must be a non-negative integer"))?;
    }
    for (k, v) in root
        .get("gauges")
        .and_then(Json::as_object)
        .ok_or("`gauges` must be an object")?
    {
        v.as_i64()
            .ok_or(format!("gauge `{k}` must be an integer"))?;
    }
    for (k, h) in root
        .get("histograms")
        .and_then(Json::as_object)
        .ok_or("`histograms` must be an object")?
    {
        let count = h.get("count").and_then(Json::as_u64).ok_or(format!(
            "histogram `{k}`: `count` must be a non-negative integer"
        ))?;
        for field in ["sum", "max"] {
            h.get(field).and_then(Json::as_u64).ok_or(format!(
                "histogram `{k}`: `{field}` must be a non-negative integer"
            ))?;
        }
        h.get("mean")
            .and_then(Json::as_f64)
            .ok_or(format!("histogram `{k}`: `mean` must be a number"))?;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or(format!("histogram `{k}`: `buckets` must be an array"))?;
        if buckets.len() != BUCKETS {
            return Err(format!(
                "histogram `{k}`: expected {BUCKETS} buckets, found {}",
                buckets.len()
            ));
        }
        let mut total = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            total += b.as_u64().ok_or(format!(
                "histogram `{k}`: bucket {i} must be a non-negative integer"
            ))?;
        }
        if total != count {
            return Err(format!(
                "histogram `{k}`: bucket sum {total} does not match count {count}"
            ));
        }
    }
    let spans = root
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("`spans` must be an array")?;
    for (i, s) in spans.iter().enumerate() {
        let path = s
            .get("path")
            .and_then(Json::as_str)
            .ok_or(format!("span {i}: `path` must be a string"))?;
        if path.is_empty() {
            return Err(format!("span {i}: `path` must be non-empty"));
        }
        let count = s.get("count").and_then(Json::as_u64).ok_or(format!(
            "span `{path}`: `count` must be a non-negative integer"
        ))?;
        if count == 0 {
            return Err(format!("span `{path}`: `count` must be positive"));
        }
        let total = s.get("total_us").and_then(Json::as_u64).ok_or(format!(
            "span `{path}`: `total_us` must be a non-negative integer"
        ))?;
        let self_us = s.get("self_us").and_then(Json::as_u64).ok_or(format!(
            "span `{path}`: `self_us` must be a non-negative integer"
        ))?;
        if self_us > total {
            return Err(format!(
                "span `{path}`: self_us {self_us} exceeds total_us {total}"
            ));
        }
    }
    let counters = root.get("counters").expect("checked above");
    for (k, v) in root
        .get("robustness")
        .and_then(Json::as_object)
        .ok_or("`robustness` must be an object")?
    {
        if !ROBUSTNESS_SUFFIXES.iter().any(|suffix| k.ends_with(suffix)) {
            return Err(format!(
                "robustness entry `{k}` does not carry a known robustness suffix"
            ));
        }
        let val = v
            .as_u64()
            .ok_or(format!("robustness `{k}` must be a non-negative integer"))?;
        match counters.get(k).and_then(Json::as_u64) {
            Some(mirror) if mirror == val => {}
            Some(mirror) => {
                return Err(format!(
                    "robustness `{k}` = {val} disagrees with counter value {mirror}"
                ));
            }
            None => {
                return Err(format!(
                    "robustness `{k}` has no matching counter of the same name"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_report() -> ObsReport {
        let obs = Obs::new();
        obs.counter("demo.tiles").add(21);
        obs.gauge("demo.depth").set(-2);
        obs.histogram("demo.lat_us").record(150);
        obs.histogram("demo.lat_us").record(3000);
        #[cfg(not(feature = "obs-off"))]
        {
            let _outer = obs.span("job");
            let _inner = obs.span("tile");
        }
        obs.report("demo")
    }

    #[test]
    fn report_json_passes_its_own_schema() {
        let report = sample_report();
        validate_report_json(&report.to_json()).unwrap();
    }

    #[test]
    fn display_mentions_every_section() {
        let text = sample_report().to_string();
        assert!(text.contains("obs report [demo]"));
        assert!(text.contains("demo.tiles"));
        assert!(text.contains("demo.depth"));
        assert!(text.contains("demo.lat_us"));
    }

    #[test]
    fn write_json_is_atomic_and_parseable() {
        let dir = std::env::temp_dir().join(format!("qk_obs_report_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/obs_demo.json");
        sample_report().write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_report_json(&text).unwrap();
        let stray: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(stray.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_rejects_structural_violations() {
        let good = sample_report().to_json();
        validate_report_json(&good).unwrap();
        // Wrong bucket count.
        let bad = good.replace("\"count\": 2", "\"count\": 3");
        assert!(validate_report_json(&bad).is_err());
        // Broken root.
        assert!(validate_report_json("[]").is_err());
        assert!(validate_report_json("{\"name\": \"x\"}").is_err());
        // self_us > total_us.
        let spans_bad = "{\"name\":\"x\",\"counters\":{},\"gauges\":{},\"histograms\":{},\
             \"spans\":[{\"path\":\"a\",\"count\":1,\"total_us\":5,\"self_us\":9}],\
             \"robustness\":{}}";
        assert!(validate_report_json(spans_bad).is_err());
    }

    #[test]
    fn robustness_section_mirrors_chaos_counters() {
        let obs = Obs::new();
        obs.counter("gram.tiles_total").add(21);
        obs.counter("gram.faults_injected").add(3);
        obs.counter("gram.retries").add(2);
        obs.counter("serve.requests_shed").inc();
        obs.counter("svm.rows_recomputed").add(4);
        obs.counter("svm.resumes").inc();
        let report = obs.report("robust");
        assert_eq!(report.robustness.len(), 5);
        assert_eq!(report.robustness["gram.faults_injected"], 3);
        assert_eq!(report.robustness["gram.retries"], 2);
        assert_eq!(report.robustness["serve.requests_shed"], 1);
        assert_eq!(report.robustness["svm.rows_recomputed"], 4);
        assert_eq!(report.robustness["svm.resumes"], 1);
        assert!(!report.robustness.contains_key("gram.tiles_total"));
        validate_report_json(&report.to_json()).unwrap();
        assert!(report.to_string().contains("robustness:"));
    }

    #[test]
    fn schema_rejects_robustness_counter_disagreement() {
        let base = "{\"name\":\"x\",\"counters\":{\"gram.retries\":2},\"gauges\":{},\
             \"histograms\":{},\"spans\":[],\"robustness\":";
        // Mirror disagrees with the counter.
        assert!(validate_report_json(&format!("{base}{{\"gram.retries\":9}}}}")).is_err());
        // Mirror without a matching counter.
        assert!(validate_report_json(&format!("{base}{{\"serve.requests_shed\":1}}}}")).is_err());
        // Non-robustness key in the section.
        assert!(validate_report_json(&format!("{base}{{\"gram.tiles_total\":2}}}}")).is_err());
        // Consistent mirror passes.
        validate_report_json(&format!("{base}{{\"gram.retries\":2}}}}")).unwrap();
    }
}
