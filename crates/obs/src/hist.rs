//! Log-bucket histogram shared by every crate's latency/size telemetry.
//!
//! This generalizes the power-of-two bucketing that `qk-serve` grew for
//! request latency into a value-agnostic `u64` histogram: bucket `i`
//! covers `[2^i, 2^(i+1))` with the final bucket absorbing everything
//! larger. Quantiles are conservative (the *upper* edge of the target
//! bucket, clamped to the observed maximum), so a reported p99 is never
//! smaller than the true p99.

use serde::Serialize;

/// Number of power-of-two buckets. Bucket `i` covers `[2^i, 2^(i+1))`
/// in the recorded unit (e.g. microseconds); 40 buckets span sub-unit
/// to ~12.7 days of microseconds, which covers every telemetry surface
/// in the workspace.
pub const BUCKETS: usize = 40;

/// Fixed-size logarithmic histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: floor(log2(v)) clamped to the table.
    /// Zero records into bucket 0 (values are floored at 1 for the
    /// logarithm only; `sum`/`max` keep the raw value).
    fn bucket(value: u64) -> usize {
        ((63 - value.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Conservative quantile: the upper edge of the bucket holding the
    /// `q`-th observation, clamped to the observed maximum. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let edge = 1u64 << ((i as u32 + 1).min(63));
                return edge.min(self.max);
            }
        }
        self.max
    }

    /// Immutable point-in-time copy with the full bucket array, so
    /// downstream tooling can recompute any quantile offline.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: u64::try_from(self.sum).unwrap_or(u64::MAX),
            max: self.max,
            mean: self.mean(),
            buckets: self.counts.to_vec(),
        }
    }
}

/// Serializable snapshot of a [`LogHistogram`].
#[derive(Debug, Clone, Serialize)]
pub struct HistSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values (saturating at `u64::MAX`).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Mean of recorded values.
    pub mean: f64,
    /// Per-bucket observation counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Recompute a conservative quantile from the serialized buckets —
    /// identical math to [`LogHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let edge = 1u64 << ((i as u32 + 1).min(63));
                return edge.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().quantile(0.99), 0);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LogHistogram::new();
        for v in [100, 200, 400, 800, 1600, 3200, 70_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max());
        assert_eq!(h.max(), 70_000);
    }

    #[test]
    fn single_observation_hits_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(333);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 333);
        }
        assert_eq!(h.mean(), 333.0);
    }

    #[test]
    fn extreme_values_clamp_to_edge_buckets() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[BUCKETS - 1], 1);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
    }

    #[test]
    fn snapshot_quantile_matches_live_quantile() {
        let mut h = LogHistogram::new();
        for v in 1..2000u64 {
            h.record(v * 7 % 5000);
        }
        let snap = h.snapshot();
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            assert_eq!(snap.quantile(q), h.quantile(q));
        }
        assert_eq!(snap.buckets.len(), BUCKETS);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }
}
