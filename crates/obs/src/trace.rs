//! Globally-mergeable distributed trace timelines.
//!
//! Every traced component records [`TraceEvent`]s onto a *lane* — one
//! logical execution stream identified by `(rank, lane)` — through a
//! shared [`Tracer`]. Events carry a per-lane **logical sequence
//! number** assigned at record time, so shards written by different
//! ranks merge into one canonical timeline no matter the order the
//! shards arrive in: the merged order is `(rank, lane, seq)`, which is
//! a total order independent of wall clocks. Wall stamps (`t_us`,
//! `dur_us`) are measured against the tracer's single shared epoch and
//! are *presentation data only* — they never order the merge. Under
//! the threads-as-ranks substitution (DESIGN.md) all ranks share one
//! process, so one epoch yields directly comparable cross-rank stamps;
//! a real multi-process MPI deployment would add per-rank clock-offset
//! correction before merging.
//!
//! The only ambient clock reads live in [`Tracer::new`] and
//! [`Tracer::now_us`] (plus the pid-tagged temp file in
//! [`Tracer::write_shards`]), keeping the determinism audit surface to
//! the same allowlisted-function discipline as the span recorder and
//! journal. With the `obs-off` feature, recording compiles to no-ops;
//! the offline merge/analyze/export functions stay available because
//! they are pure functions over already-written shards.
//!
//! Artifacts:
//! * per-rank shards `trace_rank_<r>.jsonl` (one event per line),
//! * a merged Chrome trace-event file (`trace_gram.json`) loadable in
//!   `chrome://tracing` / Perfetto ([`write_chrome_trace`]),
//! * a deterministic [`TraceAnalysis`] with utilization, steal/stall
//!   time, the critical path through the tile DAG, and scaling
//!   efficiency ([`analyze`]).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::json::{self, Json};

#[cfg(not(feature = "obs-off"))]
use std::sync::{Arc, Mutex};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// What a trace event measures. Gram phases are tile-granular, serve
/// phases are request/batch-granular; both families share one enum so
/// a merged timeline renders with one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TracePhase {
    /// Worker waited for claimable work (own queue and steal targets empty).
    QueueWait,
    /// Worker acquired a tile from another worker's queue.
    Steal,
    /// Row/column band fetched (possibly reloaded from the spill store).
    BandLoad,
    /// Tile (or batch) kernel computation.
    Compute,
    /// Tile serialized and renamed into the checkpoint store.
    CheckpointWrite,
    /// Work reassignment after a rank death (orphan adoption).
    Rebalance,
    /// Coordinator folding finished tiles into the full Gram matrix.
    Assemble,
    /// Request sat in the submission queue before a worker dequeued it.
    Queue,
    /// Worker held the batch open waiting for more requests to coalesce.
    Coalesce,
    /// Feature rows encoded into MPS states (cache-miss simulation).
    Encode,
    /// Kernel block evaluated against the support set.
    Kernel,
    /// Results sent back to the submitters.
    Reply,
}

impl TracePhase {
    /// Every phase, in canonical order.
    pub const ALL: [TracePhase; 12] = [
        TracePhase::QueueWait,
        TracePhase::Steal,
        TracePhase::BandLoad,
        TracePhase::Compute,
        TracePhase::CheckpointWrite,
        TracePhase::Rebalance,
        TracePhase::Assemble,
        TracePhase::Queue,
        TracePhase::Coalesce,
        TracePhase::Encode,
        TracePhase::Kernel,
        TracePhase::Reply,
    ];

    /// Stable wire name (snake_case), used in shards and Chrome export.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::QueueWait => "queue_wait",
            TracePhase::Steal => "steal",
            TracePhase::BandLoad => "band_load",
            TracePhase::Compute => "compute",
            TracePhase::CheckpointWrite => "checkpoint_write",
            TracePhase::Rebalance => "rebalance",
            TracePhase::Assemble => "assemble",
            TracePhase::Queue => "queue",
            TracePhase::Coalesce => "coalesce",
            TracePhase::Encode => "encode",
            TracePhase::Kernel => "kernel",
            TracePhase::Reply => "reply",
        }
    }

    /// Inverse of [`TracePhase::name`].
    pub fn parse(name: &str) -> Option<TracePhase> {
        TracePhase::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Chrome trace category: which pipeline family the phase belongs to.
    pub fn category(self) -> &'static str {
        match self {
            TracePhase::Queue
            | TracePhase::Coalesce
            | TracePhase::Encode
            | TracePhase::Kernel
            | TracePhase::Reply => "serve",
            _ => "gram",
        }
    }

    /// Phases that represent waiting rather than useful work.
    pub fn is_stall(self) -> bool {
        matches!(
            self,
            TracePhase::QueueWait | TracePhase::Queue | TracePhase::Coalesce
        )
    }

    /// Phases that account steal latency (work acquired from a peer).
    pub fn is_steal(self) -> bool {
        matches!(self, TracePhase::Steal)
    }
}

/// One completed interval on a lane. `Ord` is `(rank, lane, seq, ...)`,
/// the canonical merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Rank (process-equivalent) that recorded the event.
    pub rank: u32,
    /// Lane within the rank (worker index, assembler, ...).
    pub lane: u32,
    /// Logical sequence number, unique and dense per `(rank, lane)`.
    pub seq: u64,
    /// What the interval measured.
    pub phase: TracePhase,
    /// Interval start, microseconds since the tracer epoch.
    pub t_us: u64,
    /// Interval duration in microseconds.
    pub dur_us: u64,
    /// First phase argument (tile block row, batch size, ...); -1 = absent.
    pub arg0: i64,
    /// Second phase argument (tile block column, ...); -1 = absent.
    pub arg1: i64,
}

impl TraceEvent {
    /// Interval end, microseconds since the tracer epoch.
    pub fn end_us(&self) -> u64 {
        self.t_us.saturating_add(self.dur_us)
    }

    /// The event's shard-file representation: one JSON object on one
    /// line, exactly what [`Tracer::write_shards`] emits and
    /// [`read_shard`] parses (negative args are omitted).
    pub fn to_jsonl(self) -> String {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"rank\":{},\"lane\":{},\"seq\":{},\"phase\":\"{}\",\"t_us\":{},\"dur_us\":{}",
            self.rank,
            self.lane,
            self.seq,
            self.phase.name(),
            self.t_us,
            self.dur_us
        );
        if self.arg0 >= 0 {
            let _ = write!(line, ",\"a0\":{}", self.arg0);
        }
        if self.arg1 >= 0 {
            let _ = write!(line, ",\"a1\":{}", self.arg1);
        }
        line.push('}');
        line
    }

    fn from_json(v: &Json) -> Result<TraceEvent, String> {
        let field_u64 = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace event: `{name}` must be a non-negative integer"))
        };
        let phase_name = v
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("trace event: `phase` must be a string")?;
        let phase = TracePhase::parse(phase_name)
            .ok_or_else(|| format!("trace event: unknown phase `{phase_name}`"))?;
        Ok(TraceEvent {
            rank: u32::try_from(field_u64("rank")?)
                .map_err(|_| "trace event: `rank` out of range".to_string())?,
            lane: u32::try_from(field_u64("lane")?)
                .map_err(|_| "trace event: `lane` out of range".to_string())?,
            seq: field_u64("seq")?,
            phase,
            t_us: field_u64("t_us")?,
            dur_us: field_u64("dur_us")?,
            arg0: v.get("a0").and_then(Json::as_i64).unwrap_or(-1),
            arg1: v.get("a1").and_then(Json::as_i64).unwrap_or(-1),
        })
    }
}

#[cfg(not(feature = "obs-off"))]
#[derive(Debug, Default)]
struct TraceState {
    events: Vec<TraceEvent>,
    // Next logical sequence number per (rank, lane). Lock order: this
    // is a leaf lock — nothing else is acquired while it is held.
    seqs: BTreeMap<(u32, u32), u64>,
}

#[cfg(not(feature = "obs-off"))]
#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    state: Mutex<TraceState>,
}

/// Shared trace collector: one epoch, one event buffer, per-lane
/// logical sequence numbers. Cheap to clone; all clones record into
/// the same timeline. With `obs-off` this is a fieldless no-op.
#[derive(Debug, Clone)]
pub struct Tracer {
    #[cfg(not(feature = "obs-off"))]
    inner: Arc<TracerInner>,
}

impl PartialEq for Tracer {
    fn eq(&self, other: &Self) -> bool {
        #[cfg(not(feature = "obs-off"))]
        {
            Arc::ptr_eq(&self.inner, &other.inner)
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = other;
            true
        }
    }
}

impl Tracer {
    /// A fresh tracer whose epoch is the moment of construction.
    /// Allowlisted clock read: the epoch instant anchors every
    /// `t_us` stamp and never feeds a computed kernel value.
    pub fn new() -> Tracer {
        Tracer {
            #[cfg(not(feature = "obs-off"))]
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                state: Mutex::new(TraceState::default()),
            }),
        }
    }

    /// Microseconds since the tracer epoch. The single allowlisted
    /// clock read on the trace recording path; every span start/end
    /// stamp flows through here.
    pub fn now_us(&self) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
        }
        #[cfg(feature = "obs-off")]
        {
            0
        }
    }

    /// A recording handle for one `(rank, lane)` execution stream.
    pub fn lane(&self, rank: u32, lane: u32) -> TraceLane {
        TraceLane {
            tracer: self.clone(),
            rank,
            lane,
        }
    }

    #[cfg(not(feature = "obs-off"))]
    fn record(
        &self,
        rank: u32,
        lane: u32,
        phase: TracePhase,
        t_us: u64,
        dur_us: u64,
        args: [i64; 2],
    ) {
        let mut state = self.inner.state.lock().expect("trace state lock poisoned");
        let seq = state.seqs.entry((rank, lane)).or_insert(0);
        let event = TraceEvent {
            rank,
            lane,
            seq: *seq,
            phase,
            t_us,
            dur_us,
            arg0: args[0],
            arg1: args[1],
        };
        *seq += 1;
        state.events.push(event);
    }

    /// Every event recorded so far, in canonical `(rank, lane, seq)`
    /// order.
    pub fn events(&self) -> Vec<TraceEvent> {
        #[cfg(not(feature = "obs-off"))]
        {
            let state = self.inner.state.lock().expect("trace state lock poisoned");
            let mut events = state.events.clone();
            drop(state);
            events.sort_unstable();
            events
        }
        #[cfg(feature = "obs-off")]
        {
            Vec::new()
        }
    }

    /// Write one `trace_rank_<r>.jsonl` shard per rank that recorded
    /// events, durably (pid-tagged temp file, then rename). Returns
    /// the shard paths. Allowlisted ambient read: the process id only
    /// tags the temp-file name.
    pub fn write_shards(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        #[cfg(not(feature = "obs-off"))]
        {
            let events = self.events();
            let mut by_rank: BTreeMap<u32, String> = BTreeMap::new();
            for e in &events {
                let buf = by_rank.entry(e.rank).or_default();
                buf.push_str(&e.to_jsonl());
                buf.push('\n');
            }
            fs::create_dir_all(dir)?;
            let pid = std::process::id();
            let mut paths = Vec::with_capacity(by_rank.len());
            for (rank, body) in by_rank {
                let path = dir.join(format!("trace_rank_{rank}.jsonl"));
                let tmp = dir.join(format!(".trace_rank_{rank}.{pid}.tmp"));
                fs::write(&tmp, body)?;
                fs::rename(&tmp, &path)?;
                paths.push(path);
            }
            Ok(paths)
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = dir;
            Ok(Vec::new())
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Recording handle for one `(rank, lane)` stream. Cheap to clone.
#[derive(Debug, Clone)]
pub struct TraceLane {
    tracer: Tracer,
    rank: u32,
    lane: u32,
}

impl TraceLane {
    /// The rank this lane records under.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The lane index within the rank.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Current stamp for split-phase timing (pair with
    /// [`TraceLane::record_since`] when the phase is only known after
    /// the interval ends, e.g. queue-wait vs. steal).
    pub fn stamp(&self) -> u64 {
        self.tracer.now_us()
    }

    /// Record an interval that started at `start_us` (from
    /// [`TraceLane::stamp`]) and ends now.
    pub fn record_since(&self, start_us: u64, phase: TracePhase, arg0: i64, arg1: i64) {
        #[cfg(not(feature = "obs-off"))]
        {
            let end = self.tracer.now_us();
            self.tracer.record(
                self.rank,
                self.lane,
                phase,
                start_us,
                end.saturating_sub(start_us),
                [arg0, arg1],
            );
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = (start_us, phase, arg0, arg1);
        }
    }

    /// RAII interval: starts now, records on drop.
    #[must_use = "a trace span measures the scope it is bound to; bind it with `let _t = ...`"]
    pub fn span(&self, phase: TracePhase) -> TraceSpan {
        self.span_args(phase, -1, -1)
    }

    /// RAII interval with phase arguments (tile coordinates, batch
    /// size, ...).
    #[must_use = "a trace span measures the scope it is bound to; bind it with `let _t = ...`"]
    pub fn span_args(&self, phase: TracePhase, arg0: i64, arg1: i64) -> TraceSpan {
        TraceSpan {
            #[cfg(not(feature = "obs-off"))]
            lane: self.clone(),
            #[cfg(not(feature = "obs-off"))]
            phase,
            #[cfg(not(feature = "obs-off"))]
            start_us: self.tracer.now_us(),
            #[cfg(not(feature = "obs-off"))]
            args: [arg0, arg1],
            #[cfg(feature = "obs-off")]
            _priv: {
                let _ = (phase, arg0, arg1);
            },
        }
    }
}

/// RAII trace interval; records a [`TraceEvent`] when dropped. With
/// `obs-off` this is a fieldless no-op.
#[derive(Debug)]
pub struct TraceSpan {
    #[cfg(not(feature = "obs-off"))]
    lane: TraceLane,
    #[cfg(not(feature = "obs-off"))]
    phase: TracePhase,
    #[cfg(not(feature = "obs-off"))]
    start_us: u64,
    #[cfg(not(feature = "obs-off"))]
    args: [i64; 2],
    #[cfg(feature = "obs-off")]
    _priv: (),
}

#[cfg(not(feature = "obs-off"))]
impl Drop for TraceSpan {
    fn drop(&mut self) {
        let end = self.lane.tracer.now_us();
        self.lane.tracer.record(
            self.lane.rank,
            self.lane.lane,
            self.phase,
            self.start_us,
            end.saturating_sub(self.start_us),
            self.args,
        );
    }
}

/// Sort events into the canonical merged order `(rank, lane, seq)`.
/// The order is total (sequence numbers are unique per lane), so the
/// result is independent of the order shards were read in.
pub fn merge_events(events: &mut [TraceEvent]) {
    events.sort_unstable();
}

/// Parse one JSONL shard file.
pub fn read_shard(path: &Path) -> io::Result<Vec<TraceEvent>> {
    let text = fs::read_to_string(path)?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), i + 1),
            )
        })?;
        let event = TraceEvent::from_json(&v).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), i + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Read every `trace_rank_*.jsonl` shard in `dir` (any arrival order)
/// and merge into the canonical timeline.
pub fn read_shards(dir: &Path) -> io::Result<Vec<TraceEvent>> {
    let mut events = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("trace_rank_") && name.ends_with(".jsonl") {
            events.extend(read_shard(&entry.path())?);
        }
    }
    merge_events(&mut events);
    Ok(events)
}

/// Render merged events as Chrome trace-event JSON (complete `"X"`
/// events; `pid` = rank, `tid` = lane), loadable in `chrome://tracing`
/// and Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"seq\":{}",
            e.phase.name(),
            e.phase.category(),
            e.t_us,
            e.dur_us,
            e.rank,
            e.lane,
            e.seq
        );
        if e.arg0 >= 0 {
            let _ = write!(out, ",\"a0\":{}", e.arg0);
        }
        if e.arg1 >= 0 {
            let _ = write!(out, ",\"a1\":{}", e.arg1);
        }
        out.push_str("}}");
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Durably write the Chrome trace for `events` to `path`
/// (temp + rename; parent dirs created).
pub fn write_chrome_trace(path: &Path, events: &[TraceEvent]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace");
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    fs::write(&tmp, chrome_trace_json(events))?;
    fs::rename(&tmp, path)
}

/// Structural schema gate for an exported Chrome trace — the plain
/// Rust stand-in for a JSON-schema validator. Checks the trace-event
/// envelope, that every event is a complete (`"X"`) event with a known
/// phase name, and that logical sequence numbers are strictly
/// increasing per `(pid, tid)` lane (the canonical merge order).
pub fn validate_chrome_trace(src: &str) -> Result<(), String> {
    let root = json::parse(src).map_err(|e| e.to_string())?;
    root.as_object().ok_or("trace root must be an object")?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("`traceEvents` must be an array")?;
    let mut last_seq: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: `name` must be a string"))?;
        TracePhase::parse(name).ok_or(format!("event {i}: unknown phase `{name}`"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: `ph` must be a string"))?;
        if ph != "X" {
            return Err(format!("event {i}: `ph` must be \"X\", found `{ph}`"));
        }
        for field in ["ts", "dur", "pid", "tid"] {
            e.get(field).and_then(Json::as_u64).ok_or(format!(
                "event {i}: `{field}` must be a non-negative integer"
            ))?;
        }
        let seq = e
            .get("args")
            .and_then(|a| a.get("seq"))
            .and_then(Json::as_u64)
            .ok_or(format!(
                "event {i}: `args.seq` must be a non-negative integer"
            ))?;
        let pid = e.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
        if let Some(prev) = last_seq.insert((pid, tid), seq) {
            if seq <= prev {
                return Err(format!(
                    "event {i}: lane ({pid},{tid}) sequence not strictly increasing \
                     ({prev} then {seq}) — shards merged out of canonical order"
                ));
            }
        }
    }
    Ok(())
}

/// Aggregated statistics for one phase.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseStat {
    /// Phase wire name.
    pub phase: String,
    /// Events of this phase.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Longest single interval, microseconds.
    pub max_us: u64,
}

/// Per-lane utilization breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct LaneStat {
    /// Rank of the lane.
    pub rank: u32,
    /// Lane index within the rank.
    pub lane: u32,
    /// Events recorded on the lane.
    pub events: u64,
    /// Useful-work time (compute, band-load, checkpoint, ...), µs.
    pub busy_us: u64,
    /// Waiting time (queue-wait, coalesce), µs.
    pub stall_us: u64,
    /// Steal-latency time, µs.
    pub steal_us: u64,
    /// First interval start, µs since epoch.
    pub first_us: u64,
    /// Last interval end, µs since epoch.
    pub last_us: u64,
    /// `busy_us / wall_us` of the merged timeline, in `[0, 1]`.
    pub utilization: f64,
}

/// Per-rank rollup of its lanes (feeds scaling-vs-rank-count plots).
#[derive(Debug, Clone, Serialize)]
pub struct RankStat {
    /// Rank id.
    pub rank: u32,
    /// Lanes that recorded events under this rank.
    pub lanes: u64,
    /// Useful-work time summed over the rank's lanes, µs.
    pub busy_us: u64,
    /// `busy_us / (lanes * wall_us)`, in `[0, 1]`.
    pub utilization: f64,
}

/// The critical path through the tile DAG. Under the engine's
/// work-stealing schedule the DAG is: job start → each lane's first
/// event, sequential edges within a lane, and every lane's last event
/// → the assembly barrier at job end. The longest path is therefore
/// carried by the lane whose last interval ends latest; its per-phase
/// breakdown says what to optimize to shorten the run.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalPath {
    /// Rank of the critical lane.
    pub rank: u32,
    /// Critical lane index.
    pub lane: u32,
    /// End-to-end length of the path, µs (job start → lane's last end).
    pub length_us: u64,
    /// Useful-work time on the path, µs.
    pub busy_us: u64,
    /// Stall time on the path, µs.
    pub stall_us: u64,
    /// Steal-latency time on the path, µs.
    pub steal_us: u64,
    /// Untracked gaps between the path's intervals, µs.
    pub idle_us: u64,
    /// Per-phase breakdown of the path, canonical phase order.
    pub phases: Vec<PhaseStat>,
}

/// Deterministic analysis of a merged timeline: where time went,
/// per lane / rank / phase, plus the critical path and the scaling
/// efficiency that feeds `fig8_parallel_scaling.json`.
#[derive(Debug, Clone, Serialize)]
pub struct TraceAnalysis {
    /// Events analyzed.
    pub events: u64,
    /// Distinct ranks in the timeline.
    pub ranks: u64,
    /// Distinct `(rank, lane)` streams in the timeline.
    pub lanes: u64,
    /// Earliest interval start, µs since epoch.
    pub t0_us: u64,
    /// Latest interval end, µs since epoch.
    pub t1_us: u64,
    /// `t1_us - t0_us`.
    pub wall_us: u64,
    /// Useful-work time summed over all lanes, µs.
    pub busy_us: u64,
    /// Stall (queue-wait/coalesce) time summed over all lanes, µs.
    pub stall_us: u64,
    /// Steal-latency time summed over all lanes, µs.
    pub steal_us: u64,
    /// Number of steal events.
    pub steal_events: u64,
    /// `busy_us / (lanes * wall_us)`: achieved fraction of ideal
    /// lane-parallel speedup, in `[0, 1]`.
    pub utilization: f64,
    /// `busy_us / (ranks * wall_us)` normalized per rank — the
    /// scaling-efficiency estimate vs. rank count.
    pub scaling_efficiency: f64,
    /// Per-rank rollups, sorted by rank.
    pub per_rank: Vec<RankStat>,
    /// Per-lane breakdowns, sorted by `(rank, lane)`.
    pub per_lane: Vec<LaneStat>,
    /// Per-phase totals over the whole timeline, canonical order.
    pub per_phase: Vec<PhaseStat>,
    /// The critical path (absent only for an empty timeline).
    pub critical_path: Option<CriticalPath>,
}

impl TraceAnalysis {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("analysis serialization is infallible")
    }

    /// Durably write the analysis (temp + rename; parents created).
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("trace_report");
        let tmp = path.with_file_name(format!(".{file_name}.tmp"));
        let mut text = self.to_json();
        text.push('\n');
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path)
    }
}

impl fmt::Display for TraceAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace report: {} events, {} ranks, {} lanes, wall {:.3} ms",
            self.events,
            self.ranks,
            self.lanes,
            self.wall_us as f64 / 1e3
        )?;
        writeln!(
            f,
            "  busy {:.3} ms  stall {:.3} ms  steal {:.3} ms ({} steals)",
            self.busy_us as f64 / 1e3,
            self.stall_us as f64 / 1e3,
            self.steal_us as f64 / 1e3,
            self.steal_events
        )?;
        writeln!(
            f,
            "  lane utilization {:.1}%  scaling efficiency {:.1}% over {} rank(s)",
            100.0 * self.utilization,
            100.0 * self.scaling_efficiency,
            self.ranks
        )?;
        for p in &self.per_phase {
            writeln!(
                f,
                "  phase {:<16} n={:<6} total {:>10.3} ms  max {:>8.3} ms",
                p.phase,
                p.count,
                p.total_us as f64 / 1e3,
                p.max_us as f64 / 1e3
            )?;
        }
        if let Some(cp) = &self.critical_path {
            writeln!(
                f,
                "  critical path: rank {} lane {} — {:.3} ms ({:.3} busy, {:.3} stall, {:.3} steal, {:.3} idle)",
                cp.rank,
                cp.lane,
                cp.length_us as f64 / 1e3,
                cp.busy_us as f64 / 1e3,
                cp.stall_us as f64 / 1e3,
                cp.steal_us as f64 / 1e3,
                cp.idle_us as f64 / 1e3
            )?;
        }
        Ok(())
    }
}

fn phase_rollup(events: &[TraceEvent]) -> Vec<PhaseStat> {
    let mut stats: BTreeMap<TracePhase, (u64, u64, u64)> = BTreeMap::new();
    for e in events {
        let s = stats.entry(e.phase).or_insert((0, 0, 0));
        s.0 += 1;
        s.1 += e.dur_us;
        s.2 = s.2.max(e.dur_us);
    }
    stats
        .into_iter()
        .map(|(phase, (count, total_us, max_us))| PhaseStat {
            phase: phase.name().to_string(),
            count,
            total_us,
            max_us,
        })
        .collect()
}

/// Analyze a merged timeline. Pure and deterministic: the same event
/// set yields the same analysis regardless of input order (events are
/// re-sorted into canonical order internally).
pub fn analyze(events: &[TraceEvent]) -> TraceAnalysis {
    let mut events = events.to_vec();
    merge_events(&mut events);
    if events.is_empty() {
        return TraceAnalysis {
            events: 0,
            ranks: 0,
            lanes: 0,
            t0_us: 0,
            t1_us: 0,
            wall_us: 0,
            busy_us: 0,
            stall_us: 0,
            steal_us: 0,
            steal_events: 0,
            utilization: 0.0,
            scaling_efficiency: 0.0,
            per_rank: Vec::new(),
            per_lane: Vec::new(),
            per_phase: Vec::new(),
            critical_path: None,
        };
    }
    let t0 = events.iter().map(|e| e.t_us).min().unwrap_or(0);
    let t1 = events.iter().map(TraceEvent::end_us).max().unwrap_or(0);
    let wall = t1.saturating_sub(t0);

    #[derive(Default)]
    struct LaneAcc {
        events: Vec<TraceEvent>,
        busy: u64,
        stall: u64,
        steal: u64,
        first: u64,
        last: u64,
    }
    let mut lanes: BTreeMap<(u32, u32), LaneAcc> = BTreeMap::new();
    let mut steal_events = 0u64;
    for e in &events {
        let acc = lanes.entry((e.rank, e.lane)).or_default();
        if acc.events.is_empty() {
            acc.first = e.t_us;
            acc.last = e.end_us();
        } else {
            acc.first = acc.first.min(e.t_us);
            acc.last = acc.last.max(e.end_us());
        }
        if e.phase.is_steal() {
            acc.steal += e.dur_us;
            steal_events += 1;
        } else if e.phase.is_stall() {
            acc.stall += e.dur_us;
        } else {
            acc.busy += e.dur_us;
        }
        acc.events.push(*e);
    }

    let wall_f = (wall as f64).max(1.0);
    let per_lane: Vec<LaneStat> = lanes
        .iter()
        .map(|(&(rank, lane), acc)| LaneStat {
            rank,
            lane,
            events: acc.events.len() as u64,
            busy_us: acc.busy,
            stall_us: acc.stall,
            steal_us: acc.steal,
            first_us: acc.first,
            last_us: acc.last,
            utilization: acc.busy as f64 / wall_f,
        })
        .collect();

    let mut per_rank: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for l in &per_lane {
        let r = per_rank.entry(l.rank).or_insert((0, 0));
        r.0 += 1;
        r.1 += l.busy_us;
    }
    let per_rank: Vec<RankStat> = per_rank
        .into_iter()
        .map(|(rank, (lanes, busy_us))| RankStat {
            rank,
            lanes,
            busy_us,
            utilization: busy_us as f64 / (lanes as f64 * wall_f),
        })
        .collect();

    let busy_us: u64 = per_lane.iter().map(|l| l.busy_us).sum();
    let stall_us: u64 = per_lane.iter().map(|l| l.stall_us).sum();
    let steal_us: u64 = per_lane.iter().map(|l| l.steal_us).sum();
    let lane_count = per_lane.len() as u64;
    let rank_count = per_rank.len() as u64;

    // Critical lane: last interval end decides who held the assembly
    // barrier open; ties break toward the lower (rank, lane) so the
    // pick is deterministic.
    let critical_path = lanes
        .iter()
        .max_by(|a, b| a.1.last.cmp(&b.1.last).then(b.0.cmp(a.0)))
        .map(|(&(rank, lane), acc)| {
            let length = acc.last.saturating_sub(t0);
            let covered = acc.busy + acc.stall + acc.steal;
            CriticalPath {
                rank,
                lane,
                length_us: length,
                busy_us: acc.busy,
                stall_us: acc.stall,
                steal_us: acc.steal,
                idle_us: length.saturating_sub(covered),
                phases: phase_rollup(&acc.events),
            }
        });

    TraceAnalysis {
        events: events.len() as u64,
        ranks: rank_count,
        lanes: lane_count,
        t0_us: t0,
        t1_us: t1,
        wall_us: wall,
        busy_us,
        stall_us,
        steal_us,
        steal_events,
        utilization: busy_us as f64 / (lane_count as f64 * wall_f),
        scaling_efficiency: busy_us as f64 / (rank_count as f64 * wall_f).max(1.0),
        per_rank,
        per_lane,
        per_phase: phase_rollup(&events),
        critical_path,
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    fn event(rank: u32, lane: u32, seq: u64, phase: TracePhase, t: u64, d: u64) -> TraceEvent {
        TraceEvent {
            rank,
            lane,
            seq,
            phase,
            t_us: t,
            dur_us: d,
            arg0: -1,
            arg1: -1,
        }
    }

    #[test]
    fn lanes_assign_dense_sequences() {
        let tracer = Tracer::new();
        let a = tracer.lane(0, 0);
        let b = tracer.lane(1, 0);
        {
            let _s = a.span(TracePhase::Compute);
        }
        {
            let _s = b.span(TracePhase::Compute);
        }
        {
            let _s = a.span_args(TracePhase::CheckpointWrite, 2, 3);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        // Canonical order: rank 0 lane 0 seq 0,1 then rank 1 lane 0 seq 0.
        assert_eq!(
            events
                .iter()
                .map(|e| (e.rank, e.lane, e.seq))
                .collect::<Vec<_>>(),
            vec![(0, 0, 0), (0, 0, 1), (1, 0, 0)]
        );
        assert_eq!(events[1].arg0, 2);
        assert_eq!(events[1].arg1, 3);
    }

    #[test]
    fn split_phase_recording_picks_phase_after_the_fact() {
        let tracer = Tracer::new();
        let lane = tracer.lane(0, 4);
        let t0 = lane.stamp();
        lane.record_since(t0, TracePhase::Steal, 7, -1);
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, TracePhase::Steal);
        assert_eq!(events[0].arg0, 7);
        assert_eq!(events[0].arg1, -1);
    }

    #[test]
    fn shards_roundtrip_through_jsonl() {
        let tracer = Tracer::new();
        for rank in 0..3u32 {
            let lane = tracer.lane(rank, 0);
            let t0 = lane.stamp();
            lane.record_since(t0, TracePhase::Compute, i64::from(rank), 1);
            let t1 = lane.stamp();
            lane.record_since(t1, TracePhase::CheckpointWrite, i64::from(rank), 1);
        }
        let dir = std::env::temp_dir().join(format!("qk_trace_shards_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let paths = tracer.write_shards(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        let merged = read_shards(&dir).unwrap();
        assert_eq!(merged, tracer.events());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let canonical = vec![
            event(0, 0, 0, TracePhase::QueueWait, 0, 5),
            event(0, 0, 1, TracePhase::Compute, 5, 50),
            event(0, 1, 0, TracePhase::Steal, 2, 3),
            event(1, 0, 0, TracePhase::Compute, 1, 40),
        ];
        let mut shuffled = vec![canonical[3], canonical[1], canonical[0], canonical[2]];
        merge_events(&mut shuffled);
        assert_eq!(shuffled, canonical);
    }

    #[test]
    fn chrome_export_passes_the_schema_gate() {
        let events = vec![
            event(0, 0, 0, TracePhase::QueueWait, 0, 5),
            event(0, 0, 1, TracePhase::Compute, 5, 50),
            event(1, 0, 0, TracePhase::Kernel, 1, 40),
        ];
        let json_text = chrome_trace_json(&events);
        validate_chrome_trace(&json_text).unwrap();
        // Out-of-order sequences are rejected.
        let bad = vec![
            event(0, 0, 1, TracePhase::Compute, 5, 50),
            event(0, 0, 0, TracePhase::QueueWait, 0, 5),
        ];
        assert!(validate_chrome_trace(&chrome_trace_json(&bad)).is_err());
        // Unknown phase names are rejected.
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"mystery\",\"ph\":\"X\",\"ts\":0,\
             \"dur\":1,\"pid\":0,\"tid\":0,\"args\":{\"seq\":0}}]}"
        )
        .is_err());
    }

    #[test]
    fn analysis_accounts_busy_stall_steal_and_critical_path() {
        let events = vec![
            event(0, 0, 0, TracePhase::QueueWait, 0, 10),
            event(0, 0, 1, TracePhase::Compute, 10, 80),
            event(0, 1, 0, TracePhase::Steal, 0, 4),
            event(0, 1, 1, TracePhase::Compute, 4, 60),
            event(1, 0, 0, TracePhase::Compute, 0, 100),
        ];
        let a = analyze(&events);
        assert_eq!(a.events, 5);
        assert_eq!(a.ranks, 2);
        assert_eq!(a.lanes, 3);
        assert_eq!(a.wall_us, 100);
        assert_eq!(a.busy_us, 240);
        assert_eq!(a.stall_us, 10);
        assert_eq!(a.steal_us, 4);
        assert_eq!(a.steal_events, 1);
        assert!((a.utilization - 240.0 / 300.0).abs() < 1e-12);
        let cp = a.critical_path.as_ref().unwrap();
        assert_eq!((cp.rank, cp.lane), (1, 0));
        assert_eq!(cp.length_us, 100);
        assert_eq!(cp.idle_us, 0);
        // Analysis is input-order independent.
        let mut rev = events.clone();
        rev.reverse();
        assert_eq!(analyze(&rev).to_json(), a.to_json());
    }

    #[test]
    fn analysis_of_empty_timeline_is_zeroed() {
        let a = analyze(&[]);
        assert_eq!(a.events, 0);
        assert!(a.critical_path.is_none());
        assert_eq!(a.utilization, 0.0);
    }

    #[test]
    fn analysis_json_writes_durably() {
        let events = vec![event(0, 0, 0, TracePhase::Compute, 0, 10)];
        let a = analyze(&events);
        let dir = std::env::temp_dir().join(format!("qk_trace_report_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("trace_report.json");
        a.write_json(&path).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let parsed = json::parse(&text).unwrap();
        assert_eq!(parsed.get("events").and_then(Json::as_u64), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_names_roundtrip() {
        for p in TracePhase::ALL {
            assert_eq!(TracePhase::parse(p.name()), Some(p));
        }
        assert_eq!(TracePhase::parse("nope"), None);
    }
}

#[cfg(all(test, feature = "obs-off"))]
mod off_tests {
    use super::*;

    #[test]
    fn obs_off_records_nothing_and_writes_no_shards() {
        let tracer = Tracer::new();
        let lane = tracer.lane(0, 0);
        {
            let _s = lane.span(TracePhase::Compute);
        }
        lane.record_since(lane.stamp(), TracePhase::Steal, 1, 2);
        assert!(tracer.events().is_empty());
        let dir = std::env::temp_dir().join("qk_trace_off");
        assert!(tracer.write_shards(&dir).unwrap().is_empty());
    }
}
