//! Minimal recursive-descent JSON parser.
//!
//! The vendored `serde_json` shim can *serialize* but not parse, and
//! the report-schema gate and journal tests both need to read JSON
//! back. This parser covers the full JSON grammar over an
//! insertion-ordered object representation — enough to validate every
//! artifact this workspace writes, with zero dependencies.

use std::fmt;

/// Parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integral values round-trip
    /// exactly up to 2^53, which covers every counter this crate
    /// serializes into reports).
    Number(f64),
    /// String with escapes resolved.
    String(String),
    /// Array.
    Array(Vec<Json>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing content is an error.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for astral chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + low
                                            .checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| ParseError {
                at: start,
                message: "invalid number".to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5e3").unwrap().as_f64(), Some(2500.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = parse("{\"b\": [1, {\"c\": null}], \"a\": 2}").unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("c"), Some(&Json::Null));
    }

    #[test]
    fn resolves_escapes() {
        let v = parse("\"a\\n\\t\\\"\\\\ \\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "01x", "true false", ""] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_serde_json_output() {
        use serde::Serialize;
        #[derive(Serialize)]
        struct Demo {
            n: u64,
            x: f64,
            name: String,
            tags: Vec<u64>,
        }
        let demo = Demo {
            n: 9,
            x: 1.5,
            name: "tile \"a\"".to_string(),
            tags: vec![1, 2, 3],
        };
        let text = serde_json::to_string_pretty(&demo).unwrap();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("tile \"a\""));
        assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 3);
    }
}
