//! Rank-death drills: injected worker-rank deaths must be detected via
//! heartbeats, their tiles adopted by survivors through the dead rank's
//! checkpoint directory, and the assembled kernel must stay bitwise
//! identical to a single-process run.

use qk_chaos::FaultPlan;
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_gram::{rank_distributed_gram, GramConfig, GramEngine, RankConfig};
use qk_mps::{Mps, MpsSimulator, TruncationConfig};
use qk_tensor::backend::CpuBackend;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qk-gram-rank-test-{}-{tag}-{id}",
        std::process::id()
    ))
}

fn states(n: usize, features: usize) -> Vec<Mps> {
    let be = CpuBackend::new();
    let ansatz = AnsatzConfig::new(2, 1, 0.7);
    let trunc = TruncationConfig::default();
    (0..n)
        .map(|i| {
            let row: Vec<f64> = (0..features)
                .map(|j| ((i * features + j) % 9) as f64 * 0.22)
                .collect();
            MpsSimulator::new(&be)
                .with_truncation(trunc)
                .simulate(&feature_map_circuit(&row, &ansatz))
                .0
        })
        .collect()
}

fn clean_kernel(st: &[Mps]) -> Vec<f64> {
    let engine = GramEngine::new(GramConfig::in_memory(3));
    let out = engine.compute_gram(st, &CpuBackend::new()).unwrap();
    out.kernel.data().to_vec()
}

fn drill_config(ranks: usize, dir: &PathBuf) -> RankConfig {
    RankConfig {
        // The drill tiles are sub-millisecond; a short timeout keeps
        // the death-detection wait out of the test budget while still
        // being ~100x a tile.
        hb_timeout: Duration::from_millis(150),
        ..RankConfig::new(ranks, 3, dir)
    }
}

#[test]
fn clean_run_matches_single_process_bitwise() {
    let st = states(10, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("clean");
    let out = rank_distributed_gram(&st, &CpuBackend::new(), &drill_config(3, &dir));
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.dead_ranks, Vec::<usize>::new());
    assert_eq!(out.report.tiles_adopted, 0);
    assert_eq!(out.report.tiles_recomputed, 0);
    assert!(out.report.per_rank.iter().all(|s| !s.died));
    let total: u64 = out.report.per_rank.iter().map(|s| s.tiles_completed).sum();
    assert_eq!(total, 10, "4 bands over 10 states -> 10 upper tiles");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_rank_tiles_are_adopted_bitwise() {
    let st = states(10, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("one-death");
    let cfg = RankConfig {
        chaos: FaultPlan::new(11).kill_rank(1, 1).arm(),
        ..drill_config(3, &dir)
    };
    let out = rank_distributed_gram(&st, &CpuBackend::new(), &cfg);
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.dead_ranks, vec![1]);
    assert!(out.report.per_rank[1].died);
    assert_eq!(out.report.per_rank[1].tiles_completed, 1);
    // Rank 1 owned 3 of the 10 tiles; the one it persisted before dying
    // is adopted from its checkpoint directory, the rest recomputed.
    assert_eq!(out.report.tiles_adopted, 1);
    assert_eq!(out.report.tiles_recomputed, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn immediate_death_recomputes_everything_orphaned() {
    let st = states(10, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("early-death");
    let cfg = RankConfig {
        chaos: FaultPlan::new(12).kill_rank(2, 0).arm(),
        ..drill_config(3, &dir)
    };
    let out = rank_distributed_gram(&st, &CpuBackend::new(), &cfg);
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.dead_ranks, vec![2]);
    assert_eq!(out.report.per_rank[2].tiles_completed, 0);
    // Nothing persisted before death: every orphan is recomputed.
    assert_eq!(out.report.tiles_adopted, 0);
    assert_eq!(out.report.tiles_recomputed, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multiple_deaths_still_complete() {
    let st = states(9, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("two-deaths");
    let cfg = RankConfig {
        chaos: FaultPlan::new(13).kill_rank(1, 1).kill_rank(3, 0).arm(),
        ..drill_config(4, &dir)
    };
    let out = rank_distributed_gram(&st, &CpuBackend::new(), &cfg);
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.dead_ranks, vec![1, 3]);
    assert!(out.report.per_rank[1].died && out.report.per_rank[3].died);
    let orphaned = out.report.tiles_adopted + out.report.tiles_recomputed;
    // 3 bands over 9 states -> 6 tiles; ranks 1 and 3 owned 2 + 1.
    assert_eq!(orphaned, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killing_rank_zero_is_refused_by_the_plan() {
    let st = states(6, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("kill-zero");
    // kill_rank(0, _) is a refused no-op: the coordinator cannot be
    // chaos-killed, so the run completes with no deaths.
    let cfg = RankConfig {
        chaos: FaultPlan::new(14).kill_rank(0, 0).arm(),
        ..drill_config(2, &dir)
    };
    let out = rank_distributed_gram(&st, &CpuBackend::new(), &cfg);
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.dead_ranks, Vec::<usize>::new());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_rank_world_needs_no_protocol() {
    let st = states(7, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("solo");
    let out = rank_distributed_gram(&st, &CpuBackend::new(), &drill_config(1, &dir));
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.per_rank.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_run_restores_from_rank_checkpoints() {
    let st = states(9, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("warm");
    let cfg = drill_config(3, &dir);
    rank_distributed_gram(&st, &CpuBackend::new(), &cfg);
    // Same root, same spec: every rank restores its tiles instead of
    // recomputing, and the kernel is unchanged.
    let again = rank_distributed_gram(&st, &CpuBackend::new(), &cfg);
    assert_eq!(again.kernel.data(), clean.as_slice());
    let _ = std::fs::remove_dir_all(&dir);
}
