//! Chaos drills for the hardened Gram engine: injected checkpoint I/O
//! faults, persistent tile failures and worker panics must all recover
//! to output bitwise identical to a clean run.

use qk_chaos::{sites, Chaos, Fault, FaultPlan, RetryPolicy, Trigger};
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_gram::{GramConfig, GramEngine, GramError};
use qk_mps::{Mps, MpsSimulator, TruncationConfig};
use qk_tensor::backend::CpuBackend;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qk-gram-chaos-test-{}-{tag}-{id}",
        std::process::id()
    ))
}

fn states(n: usize, features: usize) -> Vec<Mps> {
    let be = CpuBackend::new();
    let ansatz = AnsatzConfig::new(2, 1, 0.7);
    let trunc = TruncationConfig::default();
    (0..n)
        .map(|i| {
            let row: Vec<f64> = (0..features)
                .map(|j| ((i * features + j) % 9) as f64 * 0.22)
                .collect();
            MpsSimulator::new(&be)
                .with_truncation(trunc)
                .simulate(&feature_map_circuit(&row, &ansatz))
                .0
        })
        .collect()
}

/// A fast backoff so the drills don't spend wall-clock sleeping.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_millis(1),
        ..RetryPolicy::default()
    }
}

fn clean_kernel(st: &[Mps]) -> Vec<f64> {
    let engine = GramEngine::new(GramConfig::in_memory(3));
    let out = engine.compute_gram(st, &CpuBackend::new()).unwrap();
    out.kernel.data().to_vec()
}

#[test]
fn transient_store_faults_are_retried_through() {
    let st = states(9, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("transient-store");
    let chaos = FaultPlan::new(3)
        .inject(sites::GRAM_CKPT_STORE, Fault::Io, Trigger::First(2))
        .arm();
    let engine = GramEngine::new(GramConfig {
        chaos: chaos.clone(),
        retry: fast_retry(),
        ..GramConfig::checkpointed(&dir, 3, 0xC0)
    });
    let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert!(out.report.retries >= 2, "retries = {}", out.report.retries);
    assert_eq!(out.report.faults_injected, 2);
    assert_eq!(out.report.faults_injected, chaos.injected());
    // The transient faults cost retries, not persistence: every tile is
    // on disk, so a fresh run restores all of them.
    let warm = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xC0));
    let again = warm.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(again.report.tiles_restored, again.report.tiles_total);
    assert_eq!(again.kernel.data(), clean.as_slice());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_store_faults_degrade_to_in_memory() {
    let st = states(8, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("degraded-store");
    let chaos = FaultPlan::new(4)
        .inject(sites::GRAM_CKPT_STORE, Fault::Io, Trigger::Always)
        .arm();
    let engine = GramEngine::new(GramConfig {
        chaos,
        retry: fast_retry(),
        ..GramConfig::checkpointed(&dir, 3, 0xC1)
    });
    // The job completes (degraded, not failed) and stays bitwise clean.
    let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.tiles_computed, out.report.tiles_total);
    // Nothing could persist.
    let tiles = std::fs::read_dir(dir.join("tiles")).unwrap().count();
    assert_eq!(tiles, 0, "degraded run must not have persisted tiles");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_load_faults_quarantine_and_recompute() {
    let st = states(9, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("quarantine");
    // Populate the checkpoint with a clean run.
    let first = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xC2));
    first.compute_gram(&st, &CpuBackend::new()).unwrap();
    // Resume with every load erroring: each tile is quarantined and
    // recomputed, and the output still matches.
    let chaos = FaultPlan::new(5)
        .inject(sites::GRAM_CKPT_LOAD, Fault::Io, Trigger::Always)
        .arm();
    let engine = GramEngine::new(GramConfig {
        chaos,
        retry: fast_retry(),
        ..GramConfig::checkpointed(&dir, 3, 0xC2)
    });
    let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.tiles_restored, 0);
    assert_eq!(
        out.report.tiles_quarantined as usize,
        out.report.tiles_total
    );
    assert_eq!(out.report.tiles_computed, out.report.tiles_total);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_load_faults_still_restore() {
    let st = states(9, 3);
    let clean = clean_kernel(&st);
    let dir = scratch("transient-load");
    let first = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xC3));
    first.compute_gram(&st, &CpuBackend::new()).unwrap();
    let chaos = FaultPlan::new(6)
        .inject(sites::GRAM_CKPT_LOAD, Fault::Io, Trigger::First(2))
        .arm();
    let engine = GramEngine::new(GramConfig {
        chaos,
        retry: fast_retry(),
        ..GramConfig::checkpointed(&dir, 3, 0xC3)
    });
    let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.tiles_restored, out.report.tiles_total);
    assert_eq!(out.report.tiles_quarantined, 0);
    assert!(out.report.retries >= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_is_supervised_and_bitwise_clean() {
    let st = states(9, 3);
    let clean = clean_kernel(&st);
    let chaos = FaultPlan::new(8)
        .inject(sites::GRAM_TILE, Fault::Panic, Trigger::At(vec![1]))
        .arm();
    let engine = GramEngine::new(GramConfig {
        chaos,
        workers: 2,
        ..GramConfig::in_memory(3)
    });
    let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(out.kernel.data(), clean.as_slice());
    assert_eq!(out.report.workers_restarted, 1);
    assert_eq!(out.report.faults_injected, 1);
    assert_eq!(out.report.tiles_computed, out.report.tiles_total);
}

#[test]
fn unrelenting_tile_panic_fails_after_budget() {
    let st = states(6, 3);
    let chaos = FaultPlan::new(9)
        .inject(sites::GRAM_TILE, Fault::Panic, Trigger::Always)
        .arm();
    let engine = GramEngine::new(GramConfig {
        chaos,
        workers: 1,
        ..GramConfig::in_memory(3)
    });
    match engine.compute_gram(&st, &CpuBackend::new()) {
        Err(GramError::WorkerPanic { .. }) => {}
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert!(engine.metrics().snapshot().workers_restarted >= 3);
}

#[test]
fn unwritable_checkpoint_dir_degrades_at_open() {
    let st = states(6, 3);
    let clean = clean_kernel(&st);
    // A checkpoint path under a plain file: create_dir_all must fail
    // with an I/O error even for root, and the engine degrades to an
    // un-persisted in-memory run instead of failing the job.
    let blocker = scratch("open-degrade");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let engine = GramEngine::new(GramConfig::checkpointed(blocker.join("ckpt"), 3, 0xC4));
    let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(out.kernel.data(), clean.as_slice());
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn fault_schedule_replays_bitwise() {
    // Same plan + seed → identical injection schedule, observable as
    // identical counter outcomes across repeated runs.
    let st = states(8, 3);
    let run = |seed: u64| {
        let dir = scratch("replay");
        let chaos = FaultPlan::new(seed)
            .inject(sites::GRAM_CKPT_STORE, Fault::Io, Trigger::Random(0.5))
            .arm();
        let engine = GramEngine::new(GramConfig {
            chaos: chaos.clone(),
            retry: fast_retry(),
            workers: 1,
            ..GramConfig::checkpointed(&dir, 3, 0xC5)
        });
        let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (
            out.kernel.data().to_vec(),
            chaos.injected(),
            chaos.occurrences_at(sites::GRAM_CKPT_STORE),
        )
    };
    let (k1, injected1, occ1) = run(77);
    let (k2, injected2, occ2) = run(77);
    assert_eq!(k1, k2);
    assert_eq!(injected1, injected2);
    assert_eq!(occ1, occ2);
    assert!(injected1 > 0, "p=0.5 over a full job must inject something");
}

#[test]
fn disarmed_chaos_is_the_default_and_injects_nothing() {
    let cfg = GramConfig::in_memory(4);
    assert_eq!(cfg.chaos, Chaos::disarmed());
    let st = states(6, 3);
    let engine = GramEngine::new(cfg);
    let out = engine.compute_gram(&st, &CpuBackend::new()).unwrap();
    assert_eq!(out.report.faults_injected, 0);
    assert_eq!(out.report.retries, 0);
    assert_eq!(out.report.workers_restarted, 0);
    assert_eq!(out.report.tiles_quarantined, 0);
}
