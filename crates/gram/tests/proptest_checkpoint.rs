//! Property tests for the checkpoint decoders: arbitrary, truncated or
//! bit-flipped bytes fed through the manifest and tile paths must be
//! classified (rejected or quarantined), never panic the process.

use proptest::prelude::*;
use qk_gram::{CheckpointError, CheckpointStore, JobKind, JobSpec, TilePlan};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qk-gram-ckpt-prop-{}-{tag}-{id}",
        std::process::id()
    ))
}

fn spec() -> JobSpec {
    JobSpec {
        encoding: 0xFACE,
        kind: JobKind::Train,
        rows: 10,
        cols: 10,
        tile: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A manifest file holding arbitrary garbage is rejected with a
    /// typed error — the open never panics and never silently succeeds
    /// on bytes that are not a valid manifest for this job.
    #[test]
    fn arbitrary_manifest_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let dir = scratch("manifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.qkg"), &bytes).unwrap();
        match CheckpointStore::open(&dir, &spec()) {
            Err(CheckpointError::CorruptManifest { .. })
            | Err(CheckpointError::Mismatch { .. }) => {}
            Ok(_) => prop_assert!(
                false,
                "garbage manifest must not open ({} bytes)",
                bytes.len()
            ),
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating or bit-flipping a valid manifest is always caught.
    #[test]
    fn mangled_valid_manifest_is_rejected(cut in 0usize..49, flip in 0usize..49) {
        let dir = scratch("mangle");
        CheckpointStore::open(&dir, &spec()).unwrap();
        let path = dir.join("manifest.qkg");
        let valid = std::fs::read(&path).unwrap();
        prop_assert_eq!(valid.len(), 49);

        std::fs::write(&path, &valid[..cut]).unwrap();
        prop_assert!(matches!(
            CheckpointStore::open(&dir, &spec()),
            Err(CheckpointError::CorruptManifest { .. })
        ));

        let mut flipped = valid.clone();
        flipped[flip] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert!(matches!(
            CheckpointStore::open(&dir, &spec()),
            Err(CheckpointError::CorruptManifest { .. }) | Err(CheckpointError::Mismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A tile file holding arbitrary garbage classifies as corrupt (and
    /// is quarantined), never panics, never loads.
    #[test]
    fn arbitrary_tile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let dir = scratch("tile");
        let spec = spec();
        let store = CheckpointStore::open(&dir, &spec).unwrap();
        let tile = TilePlan::symmetric(spec.rows, spec.tile).tiles[1];
        std::fs::write(dir.join("tiles").join("t_0_1.qkt"), &bytes).unwrap();
        prop_assert_eq!(store.load(&tile).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating or bit-flipping a valid tile file is always caught.
    #[test]
    fn mangled_valid_tile_is_rejected(frac in 0.0f64..1.0, flip_frac in 0.0f64..1.0) {
        let dir = scratch("tilemangle");
        let spec = spec();
        let store = CheckpointStore::open(&dir, &spec).unwrap();
        let tile = TilePlan::symmetric(spec.rows, spec.tile).tiles[1];
        let payload: Vec<f64> = (0..tile.len()).map(|k| k as f64 * 0.5).collect();
        store.store(&tile, &payload).unwrap();
        let path = dir.join("tiles").join("t_0_1.qkt");
        let valid = std::fs::read(&path).unwrap();

        let cut = ((valid.len() - 1) as f64 * frac) as usize;
        std::fs::write(&path, &valid[..cut]).unwrap();
        prop_assert_eq!(store.load(&tile).unwrap(), None);

        let mut flipped = valid.clone();
        let at = ((valid.len() - 1) as f64 * flip_frac) as usize;
        flipped[at] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        prop_assert_eq!(store.load(&tile).unwrap(), None);

        // The pristine bytes still load, so the rejections above were
        // the mutations' doing, not a broken fixture.
        std::fs::write(&path, &valid).unwrap();
        prop_assert_eq!(store.load(&tile).unwrap(), Some(payload));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
