//! The assembled kernel view handed to consumers.
//!
//! [`TiledKernel`] owns the dense row-major buffer the engine assembled
//! tile by tile (no tuples-of-pairs temporaries anywhere on the way) and
//! implements `qk_svm::KernelSource`, so `train_svc` consumes it
//! directly — no copy into a `KernelMatrix`. Conversion into the dense
//! container is a move ([`TiledKernel::into_kernel_matrix`]) for callers
//! that need the legacy type.

use qk_svm::{KernelMatrix, KernelSource};

/// A symmetric kernel assembled from tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledKernel {
    n: usize,
    data: Vec<f64>,
}

impl TiledKernel {
    pub(crate) fn from_parts(n: usize, data: Vec<f64>) -> Self {
        debug_assert_eq!(data.len(), n * n);
        TiledKernel { n, data }
    }

    /// Matrix order.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the 0x0 kernel.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry `K[i][j]`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Moves the buffer into a [`KernelMatrix`] without copying.
    pub fn into_kernel_matrix(self) -> KernelMatrix {
        KernelMatrix::from_dense(self.n, self.data)
    }
}

impl KernelSource for TiledKernel {
    fn order(&self) -> usize {
        self.n
    }

    fn entry(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_accessors_and_conversion() {
        let data = vec![1.0, 0.25, 0.25, 1.0];
        let k = TiledKernel::from_parts(2, data.clone());
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        assert_eq!(k.get(0, 1), 0.25);
        assert_eq!(KernelSource::row(&k, 1), &[0.25, 1.0]);
        assert_eq!(KernelSource::order(&k), 2);
        assert_eq!(KernelSource::entry(&k, 1, 0), 0.25);
        let dense = k.into_kernel_matrix();
        assert_eq!(dense.data(), data.as_slice());
    }
}
