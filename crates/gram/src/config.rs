//! Engine configuration: tile geometry, worker count, checkpointing,
//! memory budget and test/drill hooks.

use qk_chaos::{Chaos, RetryPolicy};
use qk_obs::{Obs, Tracer};
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of a [`crate::GramEngine`].
#[derive(Debug, Clone)]
pub struct GramConfig {
    /// Tile edge length. Peak per-worker tile memory is
    /// `tile^2 * 8` bytes; smaller tiles checkpoint at a finer grain,
    /// larger tiles amortize scheduling and I/O.
    pub tile: usize,
    /// Worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Encoding digest folded into the job fingerprint
    /// ([`crate::encoding_fingerprint`] for the standard pipeline).
    pub encoding: u64,
    /// Checkpoint directory. `None` disables persistence (pure in-memory
    /// run); `Some(dir)` persists every completed tile and resumes any
    /// valid tiles already present.
    pub checkpoint: Option<PathBuf>,
    /// Byte budget for resident MPS states on the owned-state entry
    /// points. When the encoded states exceed it, they are spilled to
    /// disk per row band and reloaded at most two bands per worker.
    /// `None` keeps everything resident.
    pub memory_budget: Option<usize>,
    /// Stop after computing this many *new* tiles, leaving the
    /// checkpoint partial — deterministic stand-in for a preemption in
    /// interrupt/resume tests. `None` runs to completion.
    pub max_tiles: Option<usize>,
    /// Per-tile pacing delay. Widens the preemption window in
    /// kill-and-resume drills (CI SIGKILLs a throttled run mid-flight);
    /// `None` in production.
    pub throttle: Option<Duration>,
    /// Observability context the engine registers its `gram.*` counters
    /// and spans into. `None` gives the engine a private context (its
    /// report still works, it just is not shared with other
    /// components). Instrumentation never participates in the bitwise
    /// determinism contract.
    pub obs: Option<Obs>,
    /// Observability export directory: when set, the engine appends
    /// lifecycle events to `gram_journal.jsonl` and writes the unified
    /// `obs_gram.json` report there when a job finishes (including
    /// interrupted runs). `None` = no export.
    pub obs_dir: Option<PathBuf>,
    /// Armed fault plan the engine's guarded operations consult
    /// (checkpoint store/load, tile compute). The default disarmed
    /// handle injects nothing; fault schedules replay bitwise per
    /// `(seed, site, occurrence)`. See `qk_chaos`.
    pub chaos: Chaos,
    /// Backoff policy for checkpoint store/load operations. Transient
    /// I/O failures are retried this many times before the engine falls
    /// back to quarantine-and-recompute (loads) or degraded in-memory
    /// assembly (stores).
    pub retry: RetryPolicy,
    /// Trace collector for tile-granular timeline events (queue-wait,
    /// steal, band-load, compute, checkpoint-write). Workers record
    /// onto lanes `(trace_rank, worker_id)`. `None` = no tracing; like
    /// the rest of the instrumentation, tracing never participates in
    /// the bitwise determinism contract.
    pub trace: Option<Tracer>,
    /// Rank id the engine's trace lanes are tagged with (the rank
    /// driver sets this; single-process runs keep 0).
    pub trace_rank: u32,
}

impl Default for GramConfig {
    fn default() -> Self {
        GramConfig {
            tile: 128,
            workers: 0,
            encoding: 0,
            checkpoint: None,
            memory_budget: None,
            max_tiles: None,
            throttle: None,
            obs: None,
            obs_dir: None,
            chaos: Chaos::disarmed(),
            retry: RetryPolicy::default(),
            trace: None,
            trace_rank: 0,
        }
    }
}

impl GramConfig {
    /// Pure in-memory configuration (no checkpoint, no spill) at the
    /// given tile edge — what `core::gram` delegates to.
    pub fn in_memory(tile: usize) -> Self {
        GramConfig {
            tile,
            ..Self::default()
        }
    }

    /// Checkpointing configuration bound to an encoding digest.
    pub fn checkpointed(dir: impl Into<PathBuf>, tile: usize, encoding: u64) -> Self {
        GramConfig {
            tile,
            encoding,
            checkpoint: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Resolved worker count.
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let m = GramConfig::in_memory(64);
        assert_eq!(m.tile, 64);
        assert!(m.checkpoint.is_none());
        let c = GramConfig::checkpointed("/tmp/x", 32, 7);
        assert_eq!(
            c.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(c.encoding, 7);
        assert!(GramConfig::default().effective_workers() >= 1);
        assert_eq!(
            GramConfig {
                workers: 3,
                ..GramConfig::default()
            }
            .effective_workers(),
            3
        );
    }
}
