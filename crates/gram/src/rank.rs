//! Rank-distributed Gram computation that survives rank death.
//!
//! ROADMAP item: the kill-and-resume drill, distributed. Tiles are
//! round-robin assigned to simulated MPI ranks; every rank persists its
//! finished tiles into its own checkpoint directory and heartbeats the
//! coordinator (rank 0) after each one. When a rank goes silent past
//! the heartbeat timeout without announcing completion, the coordinator
//! declares it dead ([`qk_mpi::HeartbeatMonitor`]) and partitions the
//! dead rank's tiles over the survivors, who *adopt* them — each
//! orphan is recovered from the dead rank's checkpoint directory when a
//! verified tile file exists there, and recomputed (then persisted by
//! its adopter) otherwise. Assembly at rank 0 reads every tile back
//! from whichever directory holds it, falling back to a local
//! recompute, so the job completes — bitwise identical to a
//! single-process run — as long as rank 0 survives.
//!
//! ## Protocol
//!
//! ```text
//! worker r:  [tile, store, HB]*  DONE  ·  recv ASSIGN  adopt*  ADONE  ·  recv FIN  FINACK
//! dead r:    [tile, store, HB]*  (death)  drain until FIN  FINACK
//! rank 0:    own tiles  ·  poll HB/DONE + sweep  ·  ASSIGN→all  adopt own share
//!            recv ADONE (live)  ·  assemble  ·  FIN→all  drain until k-1 FINACKs
//! ```
//!
//! Liveness of the exit: every rank's `FINACK` is the last message it
//! deposits, and rank 0 drains its mailbox in FIFO order until it has
//! counted one per peer — so a clean mailbox at exit is guaranteed even
//! when a slow-but-alive rank was conservatively declared dead (it
//! still receives an empty `ASSIGN` and `FIN`, and its stray messages
//! are drained with everything else).
//!
//! Rank 0 is the coordinator and must not be killed;
//! [`qk_chaos::FaultPlan::kill_rank`] refuses rank 0 for exactly this
//! reason. Real deployments would re-elect a coordinator; the drill
//! pins the recovery mechanics, not leader election.

use crate::checkpoint::CheckpointStore;
use crate::engine::{compute_tile, write_tile};
use crate::fingerprint::{JobKind, JobSpec};
use crate::tiles::{Tile, TilePlan};
use crate::view::TiledKernel;
use qk_chaos::{Chaos, RetryPolicy};
use qk_mpi::{run_world, HeartbeatMonitor, Process, Source, ANY_TAG};
use qk_mps::{Mps, ZipperWorkspace};
use qk_obs::{Journal, TraceLane, TracePhase, Tracer};
use qk_tensor::backend::ExecutionBackend;
use std::path::{Path, PathBuf};
use std::time::Duration;

const TAG_HB: u32 = 101;
const TAG_DONE: u32 = 102;
const TAG_ASSIGN: u32 = 103;
const TAG_ADONE: u32 = 104;
const TAG_FIN: u32 = 105;
const TAG_FINACK: u32 = 106;

/// Configuration for a rank-distributed, death-tolerant Gram job.
#[derive(Debug, Clone)]
pub struct RankConfig {
    /// Simulated MPI ranks (threads), min 1. Rank 0 coordinates.
    pub ranks: usize,
    /// Tile edge length, as in [`crate::GramConfig`].
    pub tile: usize,
    /// Encoding fingerprint pinning checkpoint compatibility.
    pub encoding: u64,
    /// Root directory; rank `r` checkpoints under `<root>/rank_<r>`.
    pub checkpoint_root: PathBuf,
    /// Armed fault plan; `rank_death` entries kill workers at tile
    /// boundaries. Disarmed by default.
    pub chaos: Chaos,
    /// Backoff for checkpoint stores (loads fall back to recompute).
    pub retry: RetryPolicy,
    /// Silence budget before the coordinator declares a rank dead.
    /// Must comfortably exceed the cost of one tile.
    pub hb_timeout: Duration,
    /// When set, rank 0 appends `rank_dead` / `rank_job_done` events to
    /// `rank_journal.jsonl` in this directory.
    pub obs_dir: Option<PathBuf>,
    /// Shared trace collector: each rank records onto lane `(rank, 0)`
    /// (compute, checkpoint-write, rebalance/adoption, the
    /// coordinator's liveness wait and assembly). Ranks are threads
    /// here, so one tracer epoch yields comparable cross-rank stamps;
    /// the driver writes one shard per rank at job end. `None` = no
    /// tracing.
    pub trace: Option<Tracer>,
}

impl RankConfig {
    /// A default-tolerance configuration over the given checkpoint root.
    pub fn new(ranks: usize, tile: usize, checkpoint_root: impl Into<PathBuf>) -> Self {
        RankConfig {
            ranks: ranks.max(1),
            tile: tile.max(1),
            encoding: 0,
            checkpoint_root: checkpoint_root.into(),
            chaos: Chaos::disarmed(),
            retry: RetryPolicy::default(),
            hb_timeout: Duration::from_millis(500),
            obs_dir: None,
            trace: None,
        }
    }
}

/// What one rank did before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankSummary {
    /// Owned tiles this rank completed (and attempted to persist).
    pub tiles_completed: u64,
    /// Orphaned tiles recovered from a dead rank's checkpoint.
    pub tiles_adopted: u64,
    /// Orphaned tiles recomputed (dead rank left no usable file).
    pub tiles_recomputed: u64,
    /// Whether this rank died mid-job (injected death).
    pub died: bool,
}

/// Accounting for a completed rank-distributed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankReport {
    /// Ranks the coordinator declared dead, ascending.
    pub dead_ranks: Vec<usize>,
    /// Orphans recovered from dead ranks' checkpoints, all ranks.
    pub tiles_adopted: u64,
    /// Orphans recomputed by their adopters, all ranks.
    pub tiles_recomputed: u64,
    /// Per-rank outcomes, indexed by rank.
    pub per_rank: Vec<RankSummary>,
}

/// A completed rank-distributed Gram job.
#[derive(Debug)]
pub struct RankOutcome {
    /// The assembled kernel, bitwise identical to a single-process run.
    pub kernel: TiledKernel,
    /// Recovery accounting.
    pub report: RankReport,
}

/// One rank's thread-body result, merged by the driver.
enum RankRun {
    Coordinator {
        kernel: TiledKernel,
        dead: Vec<usize>,
        summary: RankSummary,
    },
    Worker(RankSummary),
}

/// Computes the symmetric Gram matrix of `states` over simulated MPI
/// ranks, tolerating (injected) worker-rank deaths via heartbeat
/// detection and checkpoint adoption.
///
/// # Panics
/// Panics if `states` is empty or rank 0's checkpoint root is entirely
/// unusable *and* a protocol message is lost — in the spirit of
/// [`qk_mpi::run_world`], unrecoverable protocol errors abort the job.
pub fn rank_distributed_gram(
    states: &[Mps],
    backend: &dyn ExecutionBackend,
    cfg: &RankConfig,
) -> RankOutcome {
    assert!(!states.is_empty(), "need at least one state");
    let n = states.len();
    let plan = TilePlan::symmetric(n, cfg.tile);
    let spec = JobSpec {
        encoding: cfg.encoding,
        kind: JobKind::Train,
        rows: n,
        cols: n,
        tile: cfg.tile,
    };

    let runs: Vec<RankRun> = run_world(cfg.ranks, |p| {
        if p.rank() == 0 {
            coordinator(p, states, backend, cfg, &plan, &spec)
        } else {
            worker(p, states, backend, cfg, &plan, &spec)
        }
    });

    let mut per_rank = Vec::with_capacity(cfg.ranks);
    let mut kernel = None;
    let mut dead_ranks = Vec::new();
    for run in runs {
        match run {
            RankRun::Coordinator {
                kernel: k,
                dead,
                summary,
            } => {
                kernel = Some(k);
                dead_ranks = dead;
                per_rank.push(summary);
            }
            RankRun::Worker(summary) => per_rank.push(summary),
        }
    }
    let tiles_adopted = per_rank.iter().map(|s| s.tiles_adopted).sum();
    let tiles_recomputed = per_rank.iter().map(|s| s.tiles_recomputed).sum();
    RankOutcome {
        kernel: kernel.expect("rank 0 assembled the kernel"),
        report: RankReport {
            dead_ranks,
            tiles_adopted,
            tiles_recomputed,
            per_rank,
        },
    }
}

/// `<root>/rank_<r>`.
fn rank_dir(root: &Path, rank: usize) -> PathBuf {
    root.join(format!("rank_{rank}"))
}

/// Round-robin tile ownership over the plan's tile order.
fn owner(tile_index: usize, ranks: usize) -> usize {
    tile_index % ranks
}

/// Computes one tile from the resident states.
fn compute_payload(
    states: &[Mps],
    tile: &Tile,
    backend: &dyn ExecutionBackend,
    ws: &mut ZipperWorkspace,
) -> Vec<f64> {
    let rows = &states[tile.row0..tile.row0 + tile.rows];
    let cols = &states[tile.col0..tile.col0 + tile.cols];
    let mut payload = vec![0.0; tile.len()];
    compute_tile(tile, JobKind::Train, rows, cols, backend, ws, &mut payload);
    payload
}

/// Restore-else-compute for an owned tile, persisting the result
/// best-effort under the retry policy (a rank that cannot persist still
/// makes progress; assembly recomputes what it cannot read back).
fn materialize(
    store: Option<&CheckpointStore>,
    states: &[Mps],
    tile: &Tile,
    backend: &dyn ExecutionBackend,
    ws: &mut ZipperWorkspace,
    retry: &RetryPolicy,
    lane: Option<&TraceLane>,
) -> Vec<f64> {
    if let Some(store) = store {
        if let Ok(Some(payload)) = store.load(tile) {
            return payload;
        }
    }
    let payload = {
        let _t = lane.map(|l| l.span_args(TracePhase::Compute, tile.bi as i64, tile.bj as i64));
        compute_payload(states, tile, backend, ws)
    };
    if let Some(store) = store {
        let _t =
            lane.map(|l| l.span_args(TracePhase::CheckpointWrite, tile.bi as i64, tile.bj as i64));
        let _ = retry.run(|| store.store(tile, &payload)).result;
    }
    payload
}

/// A verified read of `tile` from some rank's checkpoint directory:
/// `None` unless the directory holds a matching manifest *and* a tile
/// file that passes checksum and geometry checks.
fn load_from_dir(dir: &Path, spec: &JobSpec, tile: &Tile) -> Option<Vec<f64>> {
    CheckpointStore::open(dir, spec)
        .ok()
        .and_then(|store| store.load(tile).ok().flatten())
}

fn encode_indices(indices: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(indices.len() * 8);
    for idx in indices {
        out.extend_from_slice(&idx.to_le_bytes());
    }
    out
}

fn decode_indices(bytes: &[u8]) -> Vec<u64> {
    assert!(bytes.len().is_multiple_of(8), "corrupt assignment payload");
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// Adopts one orphaned tile: recover from the dead owner's checkpoint,
/// else recompute and persist into the adopter's own directory.
/// Returns `true` when the checkpoint recovery succeeded.
#[allow(clippy::too_many_arguments)]
fn adopt(
    idx: u64,
    plan: &TilePlan,
    spec: &JobSpec,
    cfg: &RankConfig,
    own_store: Option<&CheckpointStore>,
    states: &[Mps],
    backend: &dyn ExecutionBackend,
    ws: &mut ZipperWorkspace,
    lane: Option<&TraceLane>,
) -> bool {
    let tile = &plan.tiles[idx as usize];
    let _t = lane.map(|l| l.span_args(TracePhase::Rebalance, tile.bi as i64, tile.bj as i64));
    let dead_rank = owner(idx as usize, cfg.ranks);
    let dead_dir = rank_dir(&cfg.checkpoint_root, dead_rank);
    if load_from_dir(&dead_dir, spec, tile).is_some() {
        return true;
    }
    let payload = compute_payload(states, tile, backend, ws);
    if let Some(store) = own_store {
        let _ = cfg.retry.run(|| store.store(tile, &payload)).result;
    }
    false
}

/// The worker-rank body (`rank > 0`). See the module docs for the
/// message sequence; death is simulated by abandoning the compute loop
/// and draining messages until `FIN` (a dead process answers nothing,
/// but the drill must leave the simulated mailboxes clean).
fn worker(
    p: &mut Process,
    states: &[Mps],
    backend: &dyn ExecutionBackend,
    cfg: &RankConfig,
    plan: &TilePlan,
    spec: &JobSpec,
) -> RankRun {
    let rank = p.rank();
    let lane = cfg.trace.as_ref().map(|t| t.lane(rank as u32, 0));
    let store = CheckpointStore::open(&rank_dir(&cfg.checkpoint_root, rank), spec).ok();
    let mut ws = ZipperWorkspace::new();
    let death_at = cfg.chaos.rank_death(rank);
    let mut completed = 0u64;

    let owned: Vec<usize> = (0..plan.tiles.len())
        .filter(|&i| owner(i, cfg.ranks) == rank)
        .collect();
    for &idx in &owned {
        if death_at == Some(completed) {
            return limbo(p, completed);
        }
        let _ = materialize(
            store.as_ref(),
            states,
            &plan.tiles[idx],
            backend,
            &mut ws,
            &cfg.retry,
            lane.as_ref(),
        );
        completed += 1;
        p.send(0, TAG_HB, &completed.to_le_bytes());
    }
    if death_at == Some(completed) {
        return limbo(p, completed);
    }
    p.send(0, TAG_DONE, &[]);

    // Waiting for the coordinator's (re)assignment is this rank's
    // queue-wait: it ends the moment orphan rebalancing is decided.
    let wait_start = lane.as_ref().map(|l| l.stamp());
    let assigned = decode_indices(&p.recv(Source::Rank(0), TAG_ASSIGN).payload);
    if let (Some(l), Some(t0)) = (&lane, wait_start) {
        l.record_since(t0, TracePhase::QueueWait, assigned.len() as i64, -1);
    }
    let mut adopted = 0u64;
    let mut recomputed = 0u64;
    for idx in assigned {
        if adopt(
            idx,
            plan,
            spec,
            cfg,
            store.as_ref(),
            states,
            backend,
            &mut ws,
            lane.as_ref(),
        ) {
            adopted += 1;
        } else {
            recomputed += 1;
        }
    }
    p.send(0, TAG_ADONE, &encode_indices(&[adopted, recomputed]));

    let fin = p.recv(Source::Rank(0), TAG_FIN);
    debug_assert_eq!(fin.tag, TAG_FIN);
    p.send(0, TAG_FINACK, &[]);
    RankRun::Worker(RankSummary {
        tiles_completed: completed,
        tiles_adopted: adopted,
        tiles_recomputed: recomputed,
        died: false,
    })
}

/// A dead rank's afterlife: consume every coordinator message so the
/// world exits with clean mailboxes, acknowledging only the final FIN.
fn limbo(p: &mut Process, completed: u64) -> RankRun {
    loop {
        let m = p.recv(Source::Rank(0), ANY_TAG);
        if m.tag == TAG_FIN {
            p.send(0, TAG_FINACK, &[]);
            return RankRun::Worker(RankSummary {
                tiles_completed: completed,
                tiles_adopted: 0,
                tiles_recomputed: 0,
                died: true,
            });
        }
    }
}

/// The coordinator body (rank 0): own share, liveness poll, orphan
/// re-planning, adoption share, assembly, and the FIN/FINACK epilogue.
fn coordinator(
    p: &mut Process,
    states: &[Mps],
    backend: &dyn ExecutionBackend,
    cfg: &RankConfig,
    plan: &TilePlan,
    spec: &JobSpec,
) -> RankRun {
    let n = states.len();
    let journal = cfg.obs_dir.as_ref().and_then(|dir| {
        std::fs::create_dir_all(dir).ok()?;
        Journal::open(&dir.join("rank_journal.jsonl")).ok()
    });
    let lane = cfg.trace.as_ref().map(|t| t.lane(0, 0));
    let store = CheckpointStore::open(&rank_dir(&cfg.checkpoint_root, 0), spec).ok();
    let mut ws = ZipperWorkspace::new();
    let mut completed = 0u64;
    for idx in 0..plan.tiles.len() {
        if owner(idx, cfg.ranks) == 0 {
            let _ = materialize(
                store.as_ref(),
                states,
                &plan.tiles[idx],
                backend,
                &mut ws,
                &cfg.retry,
                lane.as_ref(),
            );
            completed += 1;
        }
    }

    // Liveness poll: beats and completions arrive while we sweep for
    // overdue ranks. Only HB/DONE can be in flight toward rank 0 here —
    // nobody sends ADONE or FINACK before receiving ASSIGN / FIN.
    // The whole poll is the coordinator's queue-wait: it ends when
    // every rank has settled (done or declared dead).
    let poll_start = lane.as_ref().map(|l| l.stamp());
    let mut monitor = HeartbeatMonitor::new(cfg.ranks, cfg.hb_timeout);
    monitor.mark_done(0);
    while !monitor.all_settled() {
        while let Some(m) = p.try_recv(Source::Any, ANY_TAG) {
            match m.tag {
                TAG_HB => monitor.beat(m.src),
                TAG_DONE => monitor.mark_done(m.src),
                other => unreachable!("unexpected tag {other} during liveness poll"),
            }
        }
        for rank in monitor.sweep() {
            eprintln!("qk-gram: rank {rank} declared dead (heartbeat timeout)");
            if let Some(j) = &journal {
                j.event("rank_dead").field_u64("rank", rank as u64).log();
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let dead = monitor.dead();
    let live = monitor.live();
    if let (Some(l), Some(t0)) = (&lane, poll_start) {
        l.record_since(t0, TracePhase::QueueWait, dead.len() as i64, -1);
    }

    // Re-plan: orphaned tiles round-robin over the survivors (rank 0
    // included). Every non-zero rank gets an ASSIGN — believed-dead
    // ranks drain theirs in limbo, and a slow-but-alive rank that was
    // conservatively swept still gets an (empty) assignment so it can
    // run its epilogue instead of blocking forever.
    let orphans: Vec<u64> = (0..plan.tiles.len())
        .filter(|&i| dead.contains(&owner(i, cfg.ranks)))
        .map(|i| i as u64)
        .collect();
    let mut share: Vec<Vec<u64>> = vec![Vec::new(); cfg.ranks];
    for (k, &idx) in orphans.iter().enumerate() {
        share[live[k % live.len()]].push(idx);
    }
    for (rank, assigned) in share.iter().enumerate().skip(1) {
        p.send(rank, TAG_ASSIGN, &encode_indices(assigned));
    }
    let mut adopted = 0u64;
    let mut recomputed = 0u64;
    for &idx in &share[0] {
        if adopt(
            idx,
            plan,
            spec,
            cfg,
            store.as_ref(),
            states,
            backend,
            &mut ws,
            lane.as_ref(),
        ) {
            adopted += 1;
        } else {
            recomputed += 1;
        }
    }
    // Workers' ADONE counts gate assembly (their adopted tiles are on
    // disk once acknowledged); the totals are re-derived from the
    // per-rank summaries by the driver, so only rank 0's own share
    // lands in its summary.
    let mut peer_adoptions = 0u64;
    for &rank in live.iter().filter(|&&r| r != 0) {
        let counts = decode_indices(&p.recv(Source::Rank(rank), TAG_ADONE).payload);
        peer_adoptions += counts[0] + counts[1];
    }
    debug_assert_eq!(
        adopted + recomputed + peer_adoptions,
        orphans.len() as u64,
        "every orphan is accounted for"
    );

    // Assembly: read every tile back from whichever rank directory
    // holds a verified copy (owner first — adopters recompute into
    // their own directories), recomputing locally as the last resort so
    // the job always completes.
    let mut data = vec![0.0; n * n];
    let stores: Vec<Option<CheckpointStore>> = (0..cfg.ranks)
        .map(|r| CheckpointStore::open(&rank_dir(&cfg.checkpoint_root, r), spec).ok())
        .collect();
    for (idx, tile) in plan.tiles.iter().enumerate() {
        let _t = lane
            .as_ref()
            .map(|l| l.span_args(TracePhase::Assemble, tile.bi as i64, tile.bj as i64));
        let first = owner(idx, cfg.ranks);
        let payload = (0..cfg.ranks)
            .map(|k| (first + k) % cfg.ranks)
            .find_map(|r| stores[r].as_ref().and_then(|s| s.load(tile).ok().flatten()))
            .unwrap_or_else(|| compute_payload(states, tile, backend, &mut ws));
        write_tile(&mut data, n, JobKind::Train, tile, &payload);
    }

    // Epilogue: FIN everyone, then drain until every peer's FINACK has
    // arrived. FINACK is the last message any rank sends, so counting
    // k-1 of them proves the mailbox holds nothing else.
    for rank in 1..cfg.ranks {
        p.send(rank, TAG_FIN, &[]);
    }
    let mut acks = 0usize;
    while acks < cfg.ranks - 1 {
        if p.recv(Source::Any, ANY_TAG).tag == TAG_FINACK {
            acks += 1;
        }
    }
    if let Some(j) = &journal {
        // The coordinator's comm profile (bytes moved, time blocked in
        // recv) rides along so a trace investigation can tell a
        // communication-bound run from a compute-bound one.
        let comm = p.stats();
        j.event("rank_job_done")
            .field_u64("dead_ranks", dead.len() as u64)
            .field_u64("tiles_orphaned", orphans.len() as u64)
            .field_u64("comm_bytes", comm.bytes_total() as u64)
            .field_u64("comm_messages", comm.messages_total() as u64)
            .field_u64("comm_blocked_us", comm.blocked_us())
            .log();
        let _ = j.flush();
    }

    RankRun::Coordinator {
        kernel: TiledKernel::from_parts(n, data),
        dead,
        summary: RankSummary {
            tiles_completed: completed,
            tiles_adopted: adopted,
            tiles_recomputed: recomputed,
            died: false,
        },
    }
}
