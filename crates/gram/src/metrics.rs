//! Engine telemetry: tile/product counters and a progress snapshot with
//! throughput and ETA.
//!
//! The counters are [`qk_obs`] registry instruments (named `gram.*`),
//! so the same values that drive [`GramProgress`] also appear in the
//! unified `ObsReport` the engine exports. Snapshot conventions match
//! `qk-serve`'s metrics surface — a `Serialize + Display` snapshot
//! struct, `Duration`-typed times from monotonic instants — so a
//! serving or orchestration layer can stream both through one
//! reporting path.

use qk_obs::{Counter, Obs};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Shared mutable progress counters, updated by workers and the
/// assembler; cheap enough to poll from another thread mid-run.
#[derive(Debug)]
pub struct GramMetrics {
    started: Instant,
    tiles_total: Counter,
    tiles_computed: Counter,
    tiles_restored: Counter,
    tiles_stolen: Counter,
    bands_spilled: Counter,
    bands_reloaded: Counter,
    products_done: Counter,
    products_total: Counter,
    retries: Counter,
    tiles_quarantined: Counter,
    workers_restarted: Counter,
    faults_injected: Counter,
}

impl GramMetrics {
    pub(crate) fn with_obs(obs: &Obs) -> Self {
        GramMetrics {
            started: Instant::now(),
            tiles_total: obs.counter("gram.tiles_total"),
            tiles_computed: obs.counter("gram.tiles_computed"),
            tiles_restored: obs.counter("gram.tiles_restored"),
            tiles_stolen: obs.counter("gram.tiles_stolen"),
            bands_spilled: obs.counter("gram.bands_spilled"),
            bands_reloaded: obs.counter("gram.bands_reloaded"),
            products_done: obs.counter("gram.inner_products_done"),
            products_total: obs.counter("gram.inner_products_total"),
            retries: obs.counter("gram.retries"),
            tiles_quarantined: obs.counter("gram.tiles_quarantined"),
            workers_restarted: obs.counter("gram.workers_restarted"),
            faults_injected: obs.counter("gram.faults_injected"),
        }
    }

    pub(crate) fn start_job(&self, tiles_total: usize, products_total: usize) {
        self.tiles_total.set(tiles_total as u64);
        self.products_total.set(products_total as u64);
        self.tiles_computed.set(0);
        self.tiles_restored.set(0);
        self.tiles_stolen.set(0);
        self.bands_spilled.set(0);
        self.bands_reloaded.set(0);
        self.products_done.set(0);
        self.retries.set(0);
        self.tiles_quarantined.set(0);
        self.workers_restarted.set(0);
        self.faults_injected.set(0);
    }

    pub(crate) fn record_computed(&self, products: usize) {
        self.tiles_computed.inc();
        self.products_done.add(products as u64);
    }

    pub(crate) fn record_restored(&self, products: usize) {
        self.tiles_restored.inc();
        self.products_done.add(products as u64);
    }

    pub(crate) fn record_stolen(&self) {
        self.tiles_stolen.inc();
    }

    pub(crate) fn record_spilled(&self, bands: usize) {
        self.bands_spilled.add(bands as u64);
    }

    /// Handle workers use to count band reloads from the spill store.
    pub(crate) fn bands_reloaded_handle(&self) -> Counter {
        self.bands_reloaded.clone()
    }

    pub(crate) fn record_retries(&self, retries: u32) {
        self.retries.add(u64::from(retries));
    }

    pub(crate) fn record_quarantined(&self) {
        self.tiles_quarantined.inc();
    }

    pub(crate) fn record_worker_restarted(&self) {
        self.workers_restarted.inc();
    }

    pub(crate) fn record_fault_injected(&self) {
        self.faults_injected.inc();
    }

    /// Point-in-time progress view.
    pub fn snapshot(&self) -> GramProgress {
        let elapsed = self.started.elapsed();
        let tiles_total = self.tiles_total.get();
        let tiles_computed = self.tiles_computed.get();
        let tiles_restored = self.tiles_restored.get();
        let products_done = self.products_done.get();
        let products_total = self.products_total.get();
        let tiles_done = tiles_computed + tiles_restored;
        let throughput = products_done as f64 / elapsed.as_secs_f64().max(1e-9);
        let eta = if tiles_done == 0 || tiles_done >= tiles_total {
            Duration::ZERO
        } else {
            // Restored tiles are nearly free, so scale the remaining
            // time by outstanding *products*, not outstanding tiles.
            let remaining = products_total.saturating_sub(products_done) as f64;
            if throughput > 0.0 {
                Duration::from_secs_f64(remaining / throughput)
            } else {
                Duration::ZERO
            }
        };
        GramProgress {
            elapsed,
            tiles_total,
            tiles_computed,
            tiles_restored,
            tiles_stolen: self.tiles_stolen.get(),
            bands_spilled: self.bands_spilled.get(),
            bands_reloaded: self.bands_reloaded.get(),
            inner_products_done: products_done,
            inner_products_total: products_total,
            retries: self.retries.get(),
            tiles_quarantined: self.tiles_quarantined.get(),
            workers_restarted: self.workers_restarted.get(),
            faults_injected: self.faults_injected.get(),
            throughput_ips: throughput,
            eta,
        }
    }
}

/// One progress snapshot: completion, throughput and ETA.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GramProgress {
    /// Time since the engine was created.
    pub elapsed: Duration,
    /// Tiles in the job.
    pub tiles_total: u64,
    /// Tiles computed fresh this run.
    pub tiles_computed: u64,
    /// Tiles restored from the checkpoint.
    pub tiles_restored: u64,
    /// Tiles a worker claimed from another worker's queue.
    pub tiles_stolen: u64,
    /// Row bands serialized to the spill store this run.
    pub bands_spilled: u64,
    /// Band loads workers paid against the spill store.
    pub bands_reloaded: u64,
    /// Inner products accounted for so far (computed + restored).
    pub inner_products_done: u64,
    /// Inner products in the whole job.
    pub inner_products_total: u64,
    /// Checkpoint store/load attempts retried under the backoff policy.
    pub retries: u64,
    /// Tiles whose persisted file was quarantined (deleted) after
    /// persistently failing to load; each was recomputed.
    pub tiles_quarantined: u64,
    /// Worker restarts after a caught mid-tile panic.
    pub workers_restarted: u64,
    /// Faults the armed chaos plan injected into this engine.
    pub faults_injected: u64,
    /// Inner products per second since the engine started.
    pub throughput_ips: f64,
    /// Estimated time to completion at the current throughput.
    pub eta: Duration,
}

impl GramProgress {
    /// Completed fraction in `[0, 1]` (1 for empty jobs).
    pub fn fraction_done(&self) -> f64 {
        if self.tiles_total == 0 {
            1.0
        } else {
            (self.tiles_computed + self.tiles_restored) as f64 / self.tiles_total as f64
        }
    }
}

impl std::fmt::Display for GramProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tiles {}/{} ({} restored, {} stolen)  {:.1}% done  {:.0} ip/s  elapsed {:.2?}  eta {:.2?}",
            self.tiles_computed + self.tiles_restored,
            self.tiles_total,
            self.tiles_restored,
            self.tiles_stolen,
            100.0 * self.fraction_done(),
            self.throughput_ips,
            self.elapsed,
            self.eta,
        )?;
        let recovered =
            self.faults_injected + self.retries + self.tiles_quarantined + self.workers_restarted;
        if recovered > 0 {
            write!(
                f,
                "\nrobustness: {} faults injected, {} retries, {} tiles quarantined, {} workers restarted",
                self.faults_injected, self.retries, self.tiles_quarantined, self.workers_restarted,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> GramMetrics {
        GramMetrics::with_obs(&Obs::new())
    }

    #[test]
    fn counters_roll_up_into_snapshot() {
        let m = metrics();
        m.start_job(10, 100);
        m.record_computed(8);
        m.record_computed(8);
        m.record_restored(12);
        m.record_stolen();
        let s = m.snapshot();
        assert_eq!(s.tiles_total, 10);
        assert_eq!(s.tiles_computed, 2);
        assert_eq!(s.tiles_restored, 1);
        assert_eq!(s.tiles_stolen, 1);
        assert_eq!(s.inner_products_done, 28);
        assert_eq!(s.inner_products_total, 100);
        assert!((s.fraction_done() - 0.3).abs() < 1e-12);
        assert!(s.throughput_ips > 0.0);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn empty_job_is_complete_with_zero_eta() {
        let m = metrics();
        m.start_job(0, 0);
        let s = m.snapshot();
        assert_eq!(s.fraction_done(), 1.0);
        assert_eq!(s.eta, Duration::ZERO);
    }

    #[test]
    fn finished_job_has_zero_eta() {
        let m = metrics();
        m.start_job(2, 20);
        m.record_computed(10);
        m.record_restored(10);
        assert_eq!(m.snapshot().eta, Duration::ZERO);
    }

    #[test]
    fn counters_surface_in_the_shared_registry() {
        let obs = Obs::new();
        let m = GramMetrics::with_obs(&obs);
        m.start_job(4, 12);
        m.record_computed(3);
        m.record_spilled(2);
        m.bands_reloaded_handle().inc();
        let snap = obs.registry_snapshot();
        assert_eq!(snap.counters["gram.tiles_computed"], 1);
        assert_eq!(snap.counters["gram.bands_spilled"], 2);
        assert_eq!(snap.counters["gram.bands_reloaded"], 1);
    }

    #[test]
    fn start_job_resets_prior_run_counters() {
        let m = metrics();
        m.start_job(4, 10);
        m.record_computed(5);
        m.record_stolen();
        m.record_spilled(3);
        m.start_job(2, 6);
        let s = m.snapshot();
        assert_eq!(s.tiles_computed, 0);
        assert_eq!(s.tiles_stolen, 0);
        assert_eq!(s.bands_spilled, 0);
        assert_eq!(s.tiles_total, 2);
    }
}
