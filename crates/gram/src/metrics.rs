//! Engine telemetry: tile/product counters and a progress snapshot with
//! throughput and ETA.
//!
//! Follows the same conventions as `qk-serve`'s metrics surface —
//! atomically updated counters, a `Serialize + Display` snapshot struct,
//! `Duration`-typed times from monotonic instants — so a serving or
//! orchestration layer can stream both through one reporting path.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared mutable progress counters, updated by workers and the
/// assembler; cheap enough to poll from another thread mid-run.
#[derive(Debug)]
pub struct GramMetrics {
    started: Instant,
    tiles_total: AtomicU64,
    tiles_computed: AtomicU64,
    tiles_restored: AtomicU64,
    products_done: AtomicU64,
    products_total: AtomicU64,
}

impl GramMetrics {
    pub(crate) fn new() -> Self {
        GramMetrics {
            started: Instant::now(),
            tiles_total: AtomicU64::new(0),
            tiles_computed: AtomicU64::new(0),
            tiles_restored: AtomicU64::new(0),
            products_done: AtomicU64::new(0),
            products_total: AtomicU64::new(0),
        }
    }

    pub(crate) fn start_job(&self, tiles_total: usize, products_total: usize) {
        self.tiles_total
            .store(tiles_total as u64, Ordering::Relaxed);
        self.products_total
            .store(products_total as u64, Ordering::Relaxed);
        self.tiles_computed.store(0, Ordering::Relaxed);
        self.tiles_restored.store(0, Ordering::Relaxed);
        self.products_done.store(0, Ordering::Relaxed);
    }

    pub(crate) fn record_computed(&self, products: usize) {
        self.tiles_computed.fetch_add(1, Ordering::Relaxed);
        self.products_done
            .fetch_add(products as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_restored(&self, products: usize) {
        self.tiles_restored.fetch_add(1, Ordering::Relaxed);
        self.products_done
            .fetch_add(products as u64, Ordering::Relaxed);
    }

    /// Point-in-time progress view.
    pub fn snapshot(&self) -> GramProgress {
        let elapsed = self.started.elapsed();
        let tiles_total = self.tiles_total.load(Ordering::Relaxed);
        let tiles_computed = self.tiles_computed.load(Ordering::Relaxed);
        let tiles_restored = self.tiles_restored.load(Ordering::Relaxed);
        let products_done = self.products_done.load(Ordering::Relaxed);
        let products_total = self.products_total.load(Ordering::Relaxed);
        let tiles_done = tiles_computed + tiles_restored;
        let throughput = products_done as f64 / elapsed.as_secs_f64().max(1e-9);
        let eta = if tiles_done == 0 || tiles_done >= tiles_total {
            Duration::ZERO
        } else {
            // Restored tiles are nearly free, so scale the remaining
            // time by outstanding *products*, not outstanding tiles.
            let remaining = products_total.saturating_sub(products_done) as f64;
            if throughput > 0.0 {
                Duration::from_secs_f64(remaining / throughput)
            } else {
                Duration::ZERO
            }
        };
        GramProgress {
            elapsed,
            tiles_total,
            tiles_computed,
            tiles_restored,
            inner_products_done: products_done,
            inner_products_total: products_total,
            throughput_ips: throughput,
            eta,
        }
    }
}

/// One progress snapshot: completion, throughput and ETA.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GramProgress {
    /// Time since the engine was created.
    pub elapsed: Duration,
    /// Tiles in the job.
    pub tiles_total: u64,
    /// Tiles computed fresh this run.
    pub tiles_computed: u64,
    /// Tiles restored from the checkpoint.
    pub tiles_restored: u64,
    /// Inner products accounted for so far (computed + restored).
    pub inner_products_done: u64,
    /// Inner products in the whole job.
    pub inner_products_total: u64,
    /// Inner products per second since the engine started.
    pub throughput_ips: f64,
    /// Estimated time to completion at the current throughput.
    pub eta: Duration,
}

impl GramProgress {
    /// Completed fraction in `[0, 1]` (1 for empty jobs).
    pub fn fraction_done(&self) -> f64 {
        if self.tiles_total == 0 {
            1.0
        } else {
            (self.tiles_computed + self.tiles_restored) as f64 / self.tiles_total as f64
        }
    }
}

impl std::fmt::Display for GramProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tiles {}/{} ({} restored)  {:.1}% done  {:.0} ip/s  elapsed {:.2?}  eta {:.2?}",
            self.tiles_computed + self.tiles_restored,
            self.tiles_total,
            self.tiles_restored,
            100.0 * self.fraction_done(),
            self.throughput_ips,
            self.elapsed,
            self.eta,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_snapshot() {
        let m = GramMetrics::new();
        m.start_job(10, 100);
        m.record_computed(8);
        m.record_computed(8);
        m.record_restored(12);
        let s = m.snapshot();
        assert_eq!(s.tiles_total, 10);
        assert_eq!(s.tiles_computed, 2);
        assert_eq!(s.tiles_restored, 1);
        assert_eq!(s.inner_products_done, 28);
        assert_eq!(s.inner_products_total, 100);
        assert!((s.fraction_done() - 0.3).abs() < 1e-12);
        assert!(s.throughput_ips > 0.0);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn empty_job_is_complete_with_zero_eta() {
        let m = GramMetrics::new();
        m.start_job(0, 0);
        let s = m.snapshot();
        assert_eq!(s.fraction_done(), 1.0);
        assert_eq!(s.eta, Duration::ZERO);
    }

    #[test]
    fn finished_job_has_zero_eta() {
        let m = GramMetrics::new();
        m.start_job(2, 20);
        m.record_computed(10);
        m.record_restored(10);
        assert_eq!(m.snapshot().eta, Duration::ZERO);
    }
}
