//! The tiled Gram engine: plans tiles, restores any valid checkpointed
//! ones, and schedules the rest across a work-stealing worker pool.
//!
//! Scheduling: the pending tiles (band-major order) are split into one
//! contiguous run per worker, each guarded by its own deque. A worker
//! pops from the *front* of its own deque — preserving band order, so
//! its row-band cache stays hot — and when empty steals from the *back*
//! of the most loaded victim, where the bands it would have to load
//! anyway are coldest for the owner. Completed tiles stream over a
//! channel to the assembler thread, which writes them into the dense
//! output (and the checkpoint store persists them before they are
//! reported), so a kill at any instant loses at most the tiles in
//! flight.
//!
//! Determinism: every kernel entry is produced by the single shared
//! zipper kernel (`Mps::inner_into`, the same kernel behind
//! `Mps::inner_with`) with `i < j` operand order, regardless of tile
//! size, worker count, spill mode or resume history — so any two runs of
//! the same job are bitwise identical, and also bitwise identical to
//! `core::gram`'s single-pass loop.

use crate::checkpoint::{CheckpointError, CheckpointStore, TileLoad};
use crate::config::GramConfig;
use crate::fingerprint::{JobKind, JobSpec};
use crate::metrics::GramMetrics;
use crate::spill::{SpillError, SpillStore};
use crate::tiles::{Tile, TilePlan};
use crate::view::TiledKernel;
use qk_chaos::{sites, Chaos, Fault};
use qk_mps::{Mps, ZipperWorkspace};
use qk_obs::{Counter, Journal, Obs, TracePhase};
use qk_svm::KernelBlock;
use qk_tensor::backend::ExecutionBackend;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many times one tile may panic a worker before the job gives up
/// on it ([`GramError::WorkerPanic`]). Tiles are deterministic, so a
/// genuine kernel bug panics every retry; the budget exists to absorb
/// injected or environmental panics without looping forever.
const TILE_PANIC_BUDGET: u32 = 3;

/// Why a Gram job did not produce a complete matrix.
#[derive(Debug)]
pub enum GramError {
    /// The checkpoint directory was unusable (I/O failure, corrupt
    /// manifest, or a fingerprint belonging to a different job).
    Checkpoint(CheckpointError),
    /// Spilling or reloading states failed.
    Spill(SpillError),
    /// The run stopped at the configured `max_tiles` budget with tiles
    /// still outstanding. Completed tiles are checkpointed; rerunning
    /// the same job resumes from them.
    Interrupted {
        /// Tiles finished (restored + computed) before stopping.
        done: usize,
        /// Tiles in the whole job.
        total: usize,
    },
    /// One tile panicked its worker more than [`TILE_PANIC_BUDGET`]
    /// times. Workers are supervised — a caught panic requeues the tile
    /// and restarts the worker's state — so this surfaces only a
    /// persistently reproducing panic.
    WorkerPanic {
        /// Row-block index of the poisoned tile.
        bi: usize,
        /// Column-block index of the poisoned tile.
        bj: usize,
    },
}

impl std::fmt::Display for GramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GramError::Checkpoint(e) => write!(f, "{e}"),
            GramError::Spill(e) => write!(f, "{e}"),
            GramError::Interrupted { done, total } => {
                write!(
                    f,
                    "interrupted at tile budget: {done}/{total} tiles complete"
                )
            }
            GramError::WorkerPanic { bi, bj } => {
                write!(
                    f,
                    "tile ({bi}, {bj}) panicked its worker more than \
                     {TILE_PANIC_BUDGET} times"
                )
            }
        }
    }
}

impl std::error::Error for GramError {}

impl From<CheckpointError> for GramError {
    fn from(e: CheckpointError) -> Self {
        GramError::Checkpoint(e)
    }
}

impl From<SpillError> for GramError {
    fn from(e: SpillError) -> Self {
        GramError::Spill(e)
    }
}

/// Accounting for one completed job (the manifest-derived counts that
/// `core::gram` surfaces instead of recomputing).
#[derive(Debug, Clone, Copy)]
pub struct GramReport {
    /// Tiles in the job.
    pub tiles_total: usize,
    /// Tiles computed fresh this run.
    pub tiles_computed: usize,
    /// Tiles restored from the checkpoint.
    pub tiles_restored: usize,
    /// Inner products the full job represents (`n(n-1)/2` for train
    /// jobs, `rows * cols` for blocks), from the tile plan.
    pub inner_products: usize,
    /// Wall-clock time of this run.
    pub wall_time: Duration,
    /// Whether states were spilled to disk for this run.
    pub spilled: bool,
    /// Tiles a worker claimed from another worker's queue.
    pub tiles_stolen: u64,
    /// Row bands serialized to the spill store this run.
    pub bands_spilled: u64,
    /// Band loads workers paid against the spill store.
    pub bands_reloaded: u64,
    /// Checkpoint store/load attempts retried under the backoff policy.
    pub retries: u64,
    /// Tiles quarantined (persisted file deleted after persistent load
    /// failure) and recomputed this run.
    pub tiles_quarantined: u64,
    /// Worker restarts after caught mid-tile panics this run.
    pub workers_restarted: u64,
    /// Faults the armed chaos plan injected into this run.
    pub faults_injected: u64,
}

/// A completed symmetric train job.
#[derive(Debug)]
pub struct GramOutcome {
    /// The assembled kernel view.
    pub kernel: TiledKernel,
    /// Run accounting.
    pub report: GramReport,
}

/// A completed rectangular block job.
#[derive(Debug)]
pub struct BlockOutcome {
    /// The assembled test-against-train block.
    pub block: KernelBlock,
    /// Run accounting.
    pub report: GramReport,
}

/// Where a job's states live.
enum StateSet<'a> {
    Resident(&'a [Mps]),
    Spilled(&'a SpillStore),
}

impl StateSet<'_> {
    fn len(&self) -> usize {
        match self {
            StateSet::Resident(s) => s.len(),
            StateSet::Spilled(s) => s.len(),
        }
    }
}

/// Per-worker cache of the most recently used band of one state set.
/// Resident sets borrow bands for free; spilled sets hold one loaded
/// band at a time.
struct BandCache<'a, 'b> {
    src: &'b StateSet<'a>,
    tile: usize,
    loaded: Option<(usize, Vec<Mps>)>,
    reloads: Counter,
}

impl<'a, 'b> BandCache<'a, 'b> {
    fn new(src: &'b StateSet<'a>, tile: usize, reloads: Counter) -> Self {
        BandCache {
            src,
            tile,
            loaded: None,
            reloads,
        }
    }

    fn band(&mut self, b: usize) -> Result<&[Mps], GramError> {
        match self.src {
            StateSet::Resident(states) => {
                let lo = b * self.tile;
                let hi = (lo + self.tile).min(states.len());
                Ok(&states[lo..hi])
            }
            StateSet::Spilled(store) => {
                if self.loaded.as_ref().map(|(idx, _)| *idx) != Some(b) {
                    self.loaded = Some((b, store.load_band(b)?));
                    self.reloads.inc();
                }
                Ok(&self.loaded.as_ref().unwrap().1)
            }
        }
    }
}

/// Evaluates the engine's chaos gate at `site`: counts the injection in
/// the metrics, then acts the fault out — a stall sleeps in place, a
/// panic unwinds (workers catch it in their supervision loop), and an
/// I/O fault surfaces as a [`CheckpointError::Io`] for the retry policy
/// to chew on. Disarmed plans make this a single branch.
fn chaos_gate(chaos: &Chaos, metrics: &GramMetrics, site: &str) -> Result<(), CheckpointError> {
    match chaos.check(site) {
        None => Ok(()),
        Some(Fault::Stall(d)) => {
            metrics.record_fault_injected();
            std::thread::sleep(d);
            Ok(())
        }
        Some(Fault::Panic) => {
            metrics.record_fault_injected();
            panic!("chaos: injected panic at {site}");
        }
        Some(Fault::Io) => {
            metrics.record_fault_injected();
            Err(CheckpointError::Io(Fault::io_error(site)))
        }
    }
}

/// Contracts one tile. `row_states` / `col_states` are the tile's bands;
/// indices inside are local. Every contracted pair keeps global `i < j`
/// operand order and runs the same zipper kernel as `Mps::inner_with`,
/// which is what pins tiled output bitwise to the single-pass path. The
/// worker's zipper workspace is reused across the whole tile, so the
/// kernel's environment buffers are paid for once per band, not once per
/// pair. The caller owns the payload buffer (`rows * cols`, row-major):
/// the per-tile allocation lives at the orchestration layer, keeping
/// this function on the analyzer's no-alloc list alongside the zipper
/// kernel it drives.
pub(crate) fn compute_tile(
    tile: &Tile,
    kind: JobKind,
    row_states: &[Mps],
    col_states: &[Mps],
    backend: &dyn ExecutionBackend,
    ws: &mut ZipperWorkspace,
    payload: &mut [f64],
) {
    debug_assert_eq!(row_states.len(), tile.rows);
    debug_assert_eq!(col_states.len(), tile.cols);
    debug_assert_eq!(payload.len(), tile.rows * tile.cols);
    let diagonal = kind == JobKind::Train && tile.bi == tile.bj;
    for r in 0..tile.rows {
        for c in 0..tile.cols {
            let v = if diagonal {
                let (i, j) = (tile.row0 + r, tile.col0 + c);
                if i == j {
                    1.0
                } else if i < j {
                    row_states[r]
                        .inner_into(ws, backend, &col_states[c])
                        .norm_sqr()
                } else {
                    // Mirror of the (c, r) entry computed earlier in
                    // this same payload (c < r here).
                    payload[c * tile.cols + r]
                }
            } else {
                row_states[r]
                    .inner_into(ws, backend, &col_states[c])
                    .norm_sqr()
            };
            payload[r * tile.cols + c] = v;
        }
    }
}

/// Writes a completed tile payload into the dense row-major output,
/// mirroring off-diagonal train tiles across the main diagonal.
pub(crate) fn write_tile(
    data: &mut [f64],
    total_cols: usize,
    kind: JobKind,
    tile: &Tile,
    payload: &[f64],
) {
    for r in 0..tile.rows {
        let row = (tile.row0 + r) * total_cols + tile.col0;
        data[row..row + tile.cols].copy_from_slice(&payload[r * tile.cols..(r + 1) * tile.cols]);
    }
    if kind == JobKind::Train && tile.bi != tile.bj {
        for r in 0..tile.rows {
            for c in 0..tile.cols {
                data[(tile.col0 + c) * total_cols + (tile.row0 + r)] = payload[r * tile.cols + c];
            }
        }
    }
}

/// The tiled Gram computation engine.
pub struct GramEngine {
    cfg: GramConfig,
    obs: Obs,
    metrics: Arc<GramMetrics>,
    spill_seq: AtomicUsize,
}

impl GramEngine {
    /// Builds an engine from a configuration.
    pub fn new(cfg: GramConfig) -> Self {
        assert!(cfg.tile >= 1, "tile edge must be at least 1");
        let obs = cfg.obs.clone().unwrap_or_default();
        let metrics = Arc::new(GramMetrics::with_obs(&obs));
        GramEngine {
            cfg,
            obs,
            metrics,
            spill_seq: AtomicUsize::new(0),
        }
    }

    /// The engine's live progress counters; poll from any thread while a
    /// job runs.
    pub fn metrics(&self) -> Arc<GramMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The observability context the engine's `gram.*` counters and
    /// spans are registered in (the one from [`GramConfig::obs`], or the
    /// engine's private context).
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GramConfig {
        &self.cfg
    }

    /// Computes the symmetric training kernel over resident states.
    pub fn compute_gram(
        &self,
        states: &[Mps],
        backend: &dyn ExecutionBackend,
    ) -> Result<GramOutcome, GramError> {
        let rows = StateSet::Resident(states);
        let cols = StateSet::Resident(states);
        let (data, report) = self.run(JobKind::Train, &rows, &cols, backend, false)?;
        Ok(GramOutcome {
            kernel: TiledKernel::from_parts(states.len(), data),
            report,
        })
    }

    /// Computes the symmetric training kernel, taking ownership of the
    /// states so they can be spilled to disk per row band when they
    /// exceed the configured memory budget. Under the budget (or with no
    /// budget) this is exactly [`GramEngine::compute_gram`].
    pub fn compute_gram_owned(
        &self,
        states: Vec<Mps>,
        backend: &dyn ExecutionBackend,
    ) -> Result<GramOutcome, GramError> {
        let resident_bytes: usize = states.iter().map(Mps::memory_bytes).sum();
        let over_budget = self
            .cfg
            .memory_budget
            .is_some_and(|budget| resident_bytes > budget);
        if !over_budget {
            return self.compute_gram(&states, backend);
        }
        // Warm resume: when every planned tile already has a checkpoint
        // file, run() will restore them without ever touching a band —
        // skip serializing the whole state set to disk for nothing.
        // (Any invalid file just recomputes from the resident states.)
        if let Some(dir) = &self.cfg.checkpoint {
            let plan = TilePlan::symmetric(states.len(), self.cfg.tile);
            if plan
                .tiles
                .iter()
                .all(|t| CheckpointStore::tile_present(dir, t))
            {
                return self.compute_gram(&states, backend);
            }
        }
        let n = states.len();
        let spill_dir = self.spill_dir();
        // A SIGKILLed spilled run can leave a stale band directory (the
        // store's cleaning Drop never ran); clear it before rewriting,
        // or stale bands from a different job shape would linger.
        let _ = std::fs::remove_dir_all(&spill_dir);
        let store = SpillStore::spill(states, &spill_dir, self.cfg.tile)?;
        let rows = StateSet::Spilled(&store);
        let cols = StateSet::Spilled(&store);
        let (data, report) = self.run(JobKind::Train, &rows, &cols, backend, true)?;
        Ok(GramOutcome {
            kernel: TiledKernel::from_parts(n, data),
            report,
        })
    }

    /// Computes the rectangular test-against-train block.
    pub fn compute_block(
        &self,
        test_states: &[Mps],
        train_states: &[Mps],
        backend: &dyn ExecutionBackend,
    ) -> Result<BlockOutcome, GramError> {
        let rows = StateSet::Resident(test_states);
        let cols = StateSet::Resident(train_states);
        let (data, report) = self.run(JobKind::Block, &rows, &cols, backend, false)?;
        Ok(BlockOutcome {
            block: KernelBlock::from_dense(test_states.len(), train_states.len(), data),
            report,
        })
    }

    fn spill_dir(&self) -> std::path::PathBuf {
        let seq = self.spill_seq.fetch_add(1, Ordering::Relaxed);
        match &self.cfg.checkpoint {
            Some(dir) => dir.join(format!("spill_{seq}")),
            None => {
                std::env::temp_dir().join(format!("qk-gram-spill-{}-{seq}", std::process::id()))
            }
        }
    }

    /// Opens the lifecycle journal under `obs_dir`. Export is
    /// best-effort: an unwritable directory degrades to an un-journaled
    /// run instead of failing the computation.
    fn open_journal(&self) -> Option<Journal> {
        let dir = self.cfg.obs_dir.as_ref()?;
        match Journal::open(&dir.join("gram_journal.jsonl")) {
            Ok(journal) => Some(journal),
            Err(e) => {
                eprintln!("qk-gram: journal disabled ({}): {e}", dir.display());
                None
            }
        }
    }

    fn run(
        &self,
        kind: JobKind,
        rows_src: &StateSet<'_>,
        cols_src: &StateSet<'_>,
        backend: &dyn ExecutionBackend,
        spilled: bool,
    ) -> Result<(Vec<f64>, GramReport), GramError> {
        let start = Instant::now();
        let journal = self.open_journal();
        let result = self.run_inner(
            kind,
            rows_src,
            cols_src,
            backend,
            spilled,
            start,
            journal.as_ref(),
        );
        let status = match &result {
            Ok(_) => "complete",
            Err(GramError::Interrupted { .. }) => "interrupted",
            Err(_) => "failed",
        };
        if let Some(journal) = &journal {
            let snap = self.metrics.snapshot();
            journal
                .event("job_end")
                .field_str("status", status)
                .field_u64("computed", snap.tiles_computed)
                .field_u64("restored", snap.tiles_restored)
                .log();
            if let Err(e) = journal.flush() {
                eprintln!("qk-gram: journal flush failed: {e}");
            }
        }
        // Export the unified report for finished *and* interrupted runs:
        // a preempted job's partial profile is exactly what a resume
        // investigation wants to see.
        if let Some(dir) = &self.cfg.obs_dir {
            if matches!(&result, Ok(_) | Err(GramError::Interrupted { .. })) {
                let path = dir.join("obs_gram.json");
                if let Err(e) = self.obs.report("gram").write_json(&path) {
                    eprintln!(
                        "qk-gram: obs report export failed ({}): {e}",
                        path.display()
                    );
                }
            }
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        kind: JobKind,
        rows_src: &StateSet<'_>,
        cols_src: &StateSet<'_>,
        backend: &dyn ExecutionBackend,
        spilled: bool,
        start: Instant,
        journal: Option<&Journal>,
    ) -> Result<(Vec<f64>, GramReport), GramError> {
        let _job_span = self.obs.span("gram_job");
        let (rows, cols) = (rows_src.len(), cols_src.len());
        let plan = match kind {
            JobKind::Train => TilePlan::symmetric(rows, self.cfg.tile),
            JobKind::Block => TilePlan::rectangular(rows, cols, self.cfg.tile),
        };
        let inner_products = plan.inner_products();
        self.metrics.start_job(plan.tiles.len(), inner_products);
        if spilled {
            self.metrics.record_spilled(rows.div_ceil(self.cfg.tile));
        }
        if let Some(journal) = journal {
            journal
                .event("job_start")
                .field_str("kind", kind.name())
                .field_u64("rows", rows as u64)
                .field_u64("cols", cols as u64)
                .field_u64("tile", self.cfg.tile as u64)
                .field_bool("spilled", spilled)
                .log();
        }
        let mut data = vec![0.0f64; rows * cols];

        // Open (or resume) the checkpoint and restore valid tiles. An
        // I/O failure opening the store (unwritable or uncreatable
        // directory) degrades the run to in-memory assembly — the job
        // still completes, it just loses persistence. A mismatched or
        // corrupt manifest stays a hard error: that directory belongs
        // to some other computation and silently ignoring it would be
        // worse than failing.
        let store = match &self.cfg.checkpoint {
            Some(dir) => {
                let spec = JobSpec {
                    encoding: self.cfg.encoding,
                    kind,
                    rows,
                    cols,
                    tile: self.cfg.tile,
                };
                match CheckpointStore::open(dir, &spec) {
                    Ok(store) => Some(store),
                    Err(CheckpointError::Io(e)) => {
                        eprintln!(
                            "qk-gram: checkpoint disabled, assembling in memory \
                             ({}): {e}",
                            dir.display()
                        );
                        if let Some(journal) = journal {
                            journal
                                .event("checkpoint_degraded")
                                .field_str("stage", "open")
                                .log();
                        }
                        None
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            None => None,
        };
        let mut pending: Vec<Tile> = Vec::with_capacity(plan.tiles.len());
        let mut restored = 0usize;
        {
            let _scan_span = self.obs.span("restore_scan");
            for tile in &plan.tiles {
                if let Some(store) = &store {
                    let retried = self.cfg.retry.run(|| {
                        chaos_gate(&self.cfg.chaos, &self.metrics, sites::GRAM_CKPT_LOAD)?;
                        store.load_classified(tile)
                    });
                    self.metrics.record_retries(retried.retries);
                    match retried.result {
                        Ok(TileLoad::Loaded(payload)) => {
                            write_tile(&mut data, cols, kind, tile, &payload);
                            self.metrics.record_restored(tile.inner_products(kind));
                            restored += 1;
                            if let Some(journal) = journal {
                                journal
                                    .event("tile_restored")
                                    .field_u64("bi", tile.bi as u64)
                                    .field_u64("bj", tile.bj as u64)
                                    .log();
                            }
                            continue;
                        }
                        Ok(TileLoad::Corrupt) => {
                            if let Some(journal) = journal {
                                journal
                                    .event("tile_corrupt_recomputed")
                                    .field_u64("bi", tile.bi as u64)
                                    .field_u64("bj", tile.bj as u64)
                                    .log();
                            }
                        }
                        Ok(TileLoad::Missing) => {}
                        Err(_persistent) => {
                            // The file keeps erroring even after backoff:
                            // quarantine it and recompute the tile. Tiles
                            // are deterministic, so the replacement is
                            // bitwise identical to what the file held.
                            let _ = store.quarantine(tile);
                            self.metrics.record_quarantined();
                            if let Some(journal) = journal {
                                journal
                                    .event("tile_quarantined")
                                    .field_u64("bi", tile.bi as u64)
                                    .field_u64("bj", tile.bj as u64)
                                    .log();
                            }
                        }
                    }
                }
                pending.push(*tile);
            }
        }
        if restored > 0 {
            if let Some(journal) = journal {
                journal
                    .event("job_resume")
                    .field_u64("restored", restored as u64)
                    .log();
            }
        }

        let to_compute = pending.len();
        let computed = if to_compute > 0 {
            self.run_pool(
                kind,
                rows_src,
                cols_src,
                backend,
                store.as_ref(),
                pending,
                &mut data,
                journal,
            )?
        } else {
            0
        };

        if computed < to_compute {
            return Err(GramError::Interrupted {
                done: restored + computed,
                total: plan.tiles.len(),
            });
        }
        let snap = self.metrics.snapshot();
        Ok((
            data,
            GramReport {
                tiles_total: plan.tiles.len(),
                tiles_computed: computed,
                tiles_restored: restored,
                inner_products,
                wall_time: start.elapsed(),
                spilled,
                tiles_stolen: snap.tiles_stolen,
                bands_spilled: snap.bands_spilled,
                bands_reloaded: snap.bands_reloaded,
                retries: snap.retries,
                tiles_quarantined: snap.tiles_quarantined,
                workers_restarted: snap.workers_restarted,
                faults_injected: snap.faults_injected,
            },
        ))
    }

    /// Fans the pending tiles out over the worker pool; returns how many
    /// were computed (less than `pending.len()` only under a `max_tiles`
    /// budget).
    #[allow(clippy::too_many_arguments)]
    fn run_pool(
        &self,
        kind: JobKind,
        rows_src: &StateSet<'_>,
        cols_src: &StateSet<'_>,
        backend: &dyn ExecutionBackend,
        store: Option<&CheckpointStore>,
        pending: Vec<Tile>,
        data: &mut [f64],
        journal: Option<&Journal>,
    ) -> Result<usize, GramError> {
        let total_cols = cols_src.len();
        let workers = self.cfg.effective_workers().min(pending.len()).max(1);
        // One contiguous band-major run per worker: own work is popped
        // from the front (band locality), steals come off the back.
        let chunk = pending.len().div_ceil(workers);
        let queues: Vec<Mutex<VecDeque<Tile>>> = pending
            .chunks(chunk)
            .map(|c| Mutex::new(c.iter().copied().collect()))
            .collect();
        let budget = AtomicIsize::new(
            self.cfg
                .max_tiles
                .map(|m| m.min(isize::MAX as usize) as isize)
                .unwrap_or(isize::MAX),
        );
        let stop = AtomicBool::new(false);
        // Flips once the store persistently fails a write: remaining
        // tiles skip persistence and the run finishes in memory.
        let degraded = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<Result<(Tile, Vec<f64>), GramError>>();
        let mut first_error: Option<GramError> = None;
        let mut computed = 0usize;

        std::thread::scope(|scope| {
            for wid in 0..queues.len() {
                let tx = tx.clone();
                let queues = &queues;
                let budget = &budget;
                let stop = &stop;
                let degraded = &degraded;
                let metrics = &self.metrics;
                let cfg = &self.cfg;
                let obs = &self.obs;
                scope.spawn(move || {
                    let _worker_span = obs.span("gram_worker");
                    // Tile-granular timeline lane for this worker; the
                    // rank driver tags lanes with its rank id so shards
                    // from different ranks merge into one timeline.
                    let lane = cfg
                        .trace
                        .as_ref()
                        .map(|t| t.lane(cfg.trace_rank, wid as u32));
                    let mut row_cache =
                        BandCache::new(rows_src, cfg.tile, metrics.bands_reloaded_handle());
                    let mut col_cache =
                        BandCache::new(cols_src, cfg.tile, metrics.bands_reloaded_handle());
                    // One zipper workspace per worker for this job's
                    // lifetime: tile evaluation never allocates inside
                    // the inner-product kernel.
                    let mut ws = ZipperWorkspace::new();
                    // Per-tile panic tally for the supervision loop.
                    // (BTreeMap: deterministic iteration, and this file
                    // is on the analyzer's determinism-pinned list.)
                    let mut panics: BTreeMap<(usize, usize), u32> = BTreeMap::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let claim_start = lane.as_ref().map(|l| l.stamp());
                        let (tile, stolen) = match claim(queues, wid) {
                            Some(t) => t,
                            None => break,
                        };
                        if budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
                            // Budget exhausted: leave the rest uncomputed
                            // (the checkpoint already holds what finished).
                            break;
                        }
                        // Queue-wait vs. steal is only known after the
                        // claim resolves, hence the split-phase record.
                        if let (Some(l), Some(t0)) = (&lane, claim_start) {
                            let phase = if stolen {
                                TracePhase::Steal
                            } else {
                                TracePhase::QueueWait
                            };
                            l.record_since(t0, phase, tile.bi as i64, tile.bj as i64);
                        }
                        if stolen {
                            metrics.record_stolen();
                            if let Some(journal) = journal {
                                journal
                                    .event("worker_steal")
                                    .field_u64("worker", wid as u64)
                                    .field_u64("bi", tile.bi as u64)
                                    .field_u64("bj", tile.bj as u64)
                                    .log();
                            }
                        }
                        // The tile body runs under catch_unwind: a panic
                        // (injected or genuine) is caught below, the tile
                        // requeued, and the worker's state rebuilt — so
                        // one crash costs one tile recompute, not the job.
                        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || -> Result<(Tile, Vec<f64>), GramError> {
                                chaos_gate(&cfg.chaos, metrics, sites::GRAM_TILE)?;
                                // The tile payload is allocated here, at the
                                // orchestration layer, and handed down: the
                                // compute path itself is allocation-free.
                                let mut payload = vec![0.0f64; tile.rows * tile.cols];
                                if kind == JobKind::Train && tile.bi == tile.bj {
                                    let row_band = {
                                        let _band_span = obs.span("band_load");
                                        let _bt = lane.as_ref().map(|l| {
                                            l.span_args(
                                                TracePhase::BandLoad,
                                                tile.bi as i64,
                                                tile.bj as i64,
                                            )
                                        });
                                        row_cache.band(tile.bi)?
                                    };
                                    let _tile_span = obs.span("tile_compute");
                                    let _ct = lane.as_ref().map(|l| {
                                        l.span_args(
                                            TracePhase::Compute,
                                            tile.bi as i64,
                                            tile.bj as i64,
                                        )
                                    });
                                    compute_tile(
                                        &tile,
                                        kind,
                                        row_band,
                                        row_band,
                                        backend,
                                        &mut ws,
                                        &mut payload,
                                    );
                                } else {
                                    let (col_band, row_band) = {
                                        let _band_span = obs.span("band_load");
                                        let _bt = lane.as_ref().map(|l| {
                                            l.span_args(
                                                TracePhase::BandLoad,
                                                tile.bi as i64,
                                                tile.bj as i64,
                                            )
                                        });
                                        (col_cache.band(tile.bj)?, row_cache.band(tile.bi)?)
                                    };
                                    let _tile_span = obs.span("tile_compute");
                                    let _ct = lane.as_ref().map(|l| {
                                        l.span_args(
                                            TracePhase::Compute,
                                            tile.bi as i64,
                                            tile.bj as i64,
                                        )
                                    });
                                    compute_tile(
                                        &tile,
                                        kind,
                                        row_band,
                                        col_band,
                                        backend,
                                        &mut ws,
                                        &mut payload,
                                    );
                                }
                                if let Some(t) = cfg.throttle {
                                    std::thread::sleep(t);
                                }
                                if let Some(store) = store {
                                    if !degraded.load(Ordering::Relaxed) {
                                        let _ckpt_span = obs.span("checkpoint_write");
                                        let _ckpt_trace = lane.as_ref().map(|l| {
                                            l.span_args(
                                                TracePhase::CheckpointWrite,
                                                tile.bi as i64,
                                                tile.bj as i64,
                                            )
                                        });
                                        let retried = cfg.retry.run(|| {
                                            chaos_gate(
                                                &cfg.chaos,
                                                metrics,
                                                sites::GRAM_CKPT_STORE,
                                            )?;
                                            store.store(&tile, &payload)
                                        });
                                        metrics.record_retries(retried.retries);
                                        match retried.result {
                                            Ok(()) => {
                                                if let Some(journal) = journal {
                                                    journal
                                                        .event("checkpoint_write")
                                                        .field_u64("bi", tile.bi as u64)
                                                        .field_u64("bj", tile.bj as u64)
                                                        .log();
                                                }
                                            }
                                            Err(e) => {
                                                // Persistent write failure:
                                                // give up on the store (once)
                                                // and finish in memory rather
                                                // than failing the job.
                                                if !degraded.swap(true, Ordering::Relaxed) {
                                                    eprintln!(
                                                        "qk-gram: checkpoint store \
                                                         failed, degrading to \
                                                         in-memory assembly: {e}"
                                                    );
                                                    if let Some(journal) = journal {
                                                        journal
                                                            .event("checkpoint_degraded")
                                                            .field_str("stage", "store")
                                                            .field_u64("bi", tile.bi as u64)
                                                            .field_u64("bj", tile.bj as u64)
                                                            .log();
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                                metrics.record_computed(tile.inner_products(kind));
                                if let Some(journal) = journal {
                                    journal
                                        .event("tile_computed")
                                        .field_u64("bi", tile.bi as u64)
                                        .field_u64("bj", tile.bj as u64)
                                        .field_u64("products", tile.inner_products(kind) as u64)
                                        .log();
                                }
                                Ok((tile, payload))
                            },
                        ));
                        match attempt {
                            Ok(result) => {
                                let failed = result.is_err();
                                let _ = tx.send(result);
                                if failed {
                                    stop.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                            Err(_panic) => {
                                // Supervision: rebuild the worker's state
                                // (caches and workspace may be mid-update)
                                // and requeue the in-flight tile at the
                                // front of our own deque. Recomputing it
                                // is bitwise identical — tiles are pure.
                                row_cache = BandCache::new(
                                    rows_src,
                                    cfg.tile,
                                    metrics.bands_reloaded_handle(),
                                );
                                col_cache = BandCache::new(
                                    cols_src,
                                    cfg.tile,
                                    metrics.bands_reloaded_handle(),
                                );
                                ws = ZipperWorkspace::new();
                                metrics.record_worker_restarted();
                                if let Some(journal) = journal {
                                    journal
                                        .event("worker_restarted")
                                        .field_u64("worker", wid as u64)
                                        .field_u64("bi", tile.bi as u64)
                                        .field_u64("bj", tile.bj as u64)
                                        .log();
                                }
                                let count = panics.entry((tile.bi, tile.bj)).or_insert(0);
                                *count += 1;
                                if *count >= TILE_PANIC_BUDGET {
                                    let _ = tx.send(Err(GramError::WorkerPanic {
                                        bi: tile.bi,
                                        bj: tile.bj,
                                    }));
                                    stop.store(true, Ordering::Relaxed);
                                    break;
                                }
                                // The budget charge for the crashed attempt
                                // is refunded; the requeued tile pays again.
                                budget.fetch_add(1, Ordering::Relaxed);
                                queues[wid].lock().expect("queue poisoned").push_front(tile);
                            }
                        }
                    }
                });
            }
            drop(tx);
            // Assembler: stream completed tiles into the dense output.
            let _assemble_span = self.obs.span("assemble");
            for msg in rx {
                match msg {
                    Ok((tile, payload)) => {
                        write_tile(data, total_cols, kind, &tile, &payload);
                        computed += 1;
                    }
                    Err(e) => {
                        stop.store(true, Ordering::Relaxed);
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        });

        match first_error {
            Some(e) => Err(e),
            None => Ok(computed),
        }
    }
}

/// Claims the next tile for worker `wid`: front of its own deque, else a
/// steal from the back of the most loaded victim (the returned flag is
/// `true` for a steal). Returns `None` only after a full scan finds
/// every queue empty.
fn claim(queues: &[Mutex<VecDeque<Tile>>], wid: usize) -> Option<(Tile, bool)> {
    if let Some(t) = queues[wid].lock().expect("queue poisoned").pop_front() {
        return Some((t, false));
    }
    loop {
        // Pick the non-empty victim with the most remaining work.
        let mut best: Option<(usize, usize)> = None; // (len, index)
        for (idx, q) in queues.iter().enumerate() {
            if idx == wid {
                continue;
            }
            let len = q.lock().expect("queue poisoned").len();
            if len > 0 && best.is_none_or(|(l, _)| len > l) {
                best = Some((len, idx));
            }
        }
        let (_, idx) = best?;
        if let Some(t) = queues[idx].lock().expect("queue poisoned").pop_back() {
            return Some((t, true));
        }
        // Lost the race for the victim's last tile; rescan.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
    use qk_mps::{MpsSimulator, TruncationConfig};
    use qk_tensor::backend::CpuBackend;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "qk-gram-engine-test-{}-{tag}-{id}",
            std::process::id()
        ))
    }

    fn states(n: usize, features: usize) -> Vec<Mps> {
        let be = CpuBackend::new();
        let ansatz = AnsatzConfig::new(2, 1, 0.7);
        let trunc = TruncationConfig::default();
        (0..n)
            .map(|i| {
                let row: Vec<f64> = (0..features)
                    .map(|j| ((i * features + j) % 9) as f64 * 0.22)
                    .collect();
                MpsSimulator::new(&be)
                    .with_truncation(trunc)
                    .simulate(&feature_map_circuit(&row, &ansatz))
                    .0
            })
            .collect()
    }

    /// Reference single-pass upper-triangle kernel.
    fn reference_gram(st: &[Mps], be: &dyn ExecutionBackend) -> Vec<f64> {
        let n = st.len();
        let mut data = vec![0.0f64; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let v = st[i].inner_with(be, &st[j]).norm_sqr();
                data[i * n + j] = v;
                data[j * n + i] = v;
            }
        }
        data
    }

    #[test]
    fn tiled_gram_is_bitwise_identical_to_reference() {
        let st = states(13, 4);
        let be = CpuBackend::new();
        let reference = reference_gram(&st, &be);
        for tile in [1usize, 3, 4, 13, 64] {
            for workers in [1usize, 2, 5] {
                let engine = GramEngine::new(GramConfig {
                    tile,
                    workers,
                    ..GramConfig::default()
                });
                let out = engine.compute_gram(&st, &be).unwrap();
                assert_eq!(
                    out.kernel.data(),
                    reference.as_slice(),
                    "tile={tile} workers={workers}"
                );
                assert_eq!(out.report.inner_products, 13 * 12 / 2);
                assert_eq!(out.report.tiles_restored, 0);
                assert_eq!(out.report.tiles_computed, out.report.tiles_total);
            }
        }
    }

    #[test]
    fn tiled_block_matches_direct() {
        let train = states(7, 3);
        let test = states(4, 3);
        let be = CpuBackend::new();
        let engine = GramEngine::new(GramConfig {
            tile: 3,
            workers: 2,
            ..GramConfig::default()
        });
        let out = engine.compute_block(&test, &train, &be).unwrap();
        assert_eq!(out.block.rows(), 4);
        assert_eq!(out.block.cols(), 7);
        assert_eq!(out.report.inner_products, 28);
        for (t, ts) in test.iter().enumerate() {
            for (s, ss) in train.iter().enumerate() {
                let direct = ts.inner_with(&be, ss).norm_sqr();
                assert_eq!(out.block.row(t)[s].to_bits(), direct.to_bits());
            }
        }
    }

    #[test]
    fn empty_and_single_state_jobs() {
        let be = CpuBackend::new();
        let engine = GramEngine::new(GramConfig::in_memory(8));
        let empty = engine.compute_gram(&[], &be).unwrap();
        assert_eq!(empty.kernel.len(), 0);
        assert_eq!(empty.report.inner_products, 0);
        let one = engine.compute_gram(&states(1, 3), &be).unwrap();
        assert_eq!(one.kernel.len(), 1);
        assert_eq!(one.kernel.get(0, 0), 1.0);
        assert_eq!(one.report.inner_products, 0);
        let block = engine.compute_block(&[], &states(3, 3), &be).unwrap();
        assert_eq!(block.block.rows(), 0);
    }

    #[test]
    fn interrupt_and_resume_is_bitwise_identical() {
        let st = states(11, 4);
        let be = CpuBackend::new();
        let clean = {
            let engine = GramEngine::new(GramConfig::in_memory(3));
            engine.compute_gram(&st, &be).unwrap().kernel
        };
        let dir = scratch("resume");
        // First life: budget of 4 tiles, then "preemption".
        let interrupted = GramEngine::new(GramConfig {
            max_tiles: Some(4),
            ..GramConfig::checkpointed(&dir, 3, 0xE0)
        });
        match interrupted.compute_gram(&st, &be) {
            Err(GramError::Interrupted { done, total }) => {
                assert_eq!(done, 4);
                assert_eq!(total, 10);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
        // Second life: resume and finish.
        let resumed = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xE0));
        let out = resumed.compute_gram(&st, &be).unwrap();
        assert_eq!(out.report.tiles_restored, 4);
        assert_eq!(out.report.tiles_computed, 6);
        assert_eq!(out.kernel.data(), clean.data());
        // Third life: everything restores, nothing recomputes.
        let warm = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xE0));
        let again = warm.compute_gram(&st, &be).unwrap();
        assert_eq!(again.report.tiles_restored, 10);
        assert_eq!(again.report.tiles_computed, 0);
        assert_eq!(again.kernel.data(), clean.data());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_job_rejects_checkpoint_dir() {
        let st = states(6, 3);
        let be = CpuBackend::new();
        let dir = scratch("reject");
        let a = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xAA));
        a.compute_gram(&st, &be).unwrap();
        // Different encoding fingerprint: refuse to touch the directory.
        let b = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xBB));
        assert!(matches!(
            b.compute_gram(&st, &be),
            Err(GramError::Checkpoint(CheckpointError::Mismatch { .. }))
        ));
        // Different tile size: also a different job.
        let c = GramEngine::new(GramConfig::checkpointed(&dir, 2, 0xAA));
        assert!(matches!(
            c.compute_gram(&st, &be),
            Err(GramError::Checkpoint(CheckpointError::Mismatch { .. }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tile_is_recomputed_on_resume() {
        let st = states(9, 3);
        let be = CpuBackend::new();
        let dir = scratch("recompute");
        let first = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xCC));
        let clean = first.compute_gram(&st, &be).unwrap();
        // Corrupt one tile file and truncate another.
        let tiles_dir = dir.join("tiles");
        let mut names: Vec<PathBuf> = std::fs::read_dir(&tiles_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        names.sort();
        let mut bytes = std::fs::read(&names[0]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&names[0], &bytes).unwrap();
        let bytes = std::fs::read(&names[1]).unwrap();
        std::fs::write(&names[1], &bytes[..bytes.len() - 5]).unwrap();
        // Resume: the two damaged tiles recompute, output identical.
        let second = GramEngine::new(GramConfig::checkpointed(&dir, 3, 0xCC));
        let out = second.compute_gram(&st, &be).unwrap();
        assert_eq!(out.report.tiles_computed, 2);
        assert_eq!(out.report.tiles_restored, out.report.tiles_total - 2);
        assert_eq!(out.kernel.data(), clean.kernel.data());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spilled_run_is_bitwise_identical_and_bounded() {
        let st = states(10, 4);
        let be = CpuBackend::new();
        let resident = GramEngine::new(GramConfig::in_memory(4))
            .compute_gram(&st, &be)
            .unwrap();
        assert!(!resident.report.spilled);
        // A 1-byte budget forces the spill path.
        let engine = GramEngine::new(GramConfig {
            memory_budget: Some(1),
            workers: 3,
            ..GramConfig::in_memory(4)
        });
        let spilled = engine.compute_gram_owned(st.clone(), &be).unwrap();
        assert!(spilled.report.spilled);
        assert_eq!(spilled.kernel.data(), resident.kernel.data());
        // A generous budget keeps the resident path.
        let engine = GramEngine::new(GramConfig {
            memory_budget: Some(usize::MAX),
            ..GramConfig::in_memory(4)
        });
        let kept = engine.compute_gram_owned(st, &be).unwrap();
        assert!(!kept.report.spilled);
        assert_eq!(kept.kernel.data(), resident.kernel.data());
    }

    #[test]
    fn warm_resume_skips_the_spill() {
        let st = states(10, 3);
        let be = CpuBackend::new();
        let dir = scratch("warmspill");
        let cfg = GramConfig {
            memory_budget: Some(1),
            ..GramConfig::checkpointed(&dir, 4, 0xF0)
        };
        // Cold run: over budget, spills, checkpoints everything.
        let cold = GramEngine::new(cfg.clone())
            .compute_gram_owned(st.clone(), &be)
            .unwrap();
        assert!(cold.report.spilled);
        assert_eq!(cold.report.tiles_computed, cold.report.tiles_total);
        // Warm run: every tile restores, so the states are never
        // serialized again even though the budget is still exceeded.
        let warm = GramEngine::new(cfg).compute_gram_owned(st, &be).unwrap();
        assert!(!warm.report.spilled);
        assert_eq!(warm.report.tiles_restored, warm.report.tiles_total);
        assert_eq!(warm.kernel.data(), cold.kernel.data());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_track_progress() {
        let st = states(8, 3);
        let be = CpuBackend::new();
        let engine = GramEngine::new(GramConfig::in_memory(3));
        let metrics = engine.metrics();
        engine.compute_gram(&st, &be).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.tiles_total, 6);
        assert_eq!(snap.tiles_computed, 6);
        assert_eq!(snap.inner_products_done, 28);
        assert_eq!(snap.inner_products_total, 28);
        assert_eq!(snap.fraction_done(), 1.0);
        assert!(snap.throughput_ips > 0.0);
    }

    #[test]
    fn trains_svm_from_tiled_view_without_dense_copy() {
        // Two tight clusters: the engine's view trains exactly like the
        // dense matrix.
        use qk_svm::{train_svc, KernelMatrix, SmoParams};
        let st = states(8, 4);
        let be = CpuBackend::new();
        let out = GramEngine::new(GramConfig::in_memory(3))
            .compute_gram(&st, &be)
            .unwrap();
        let labels: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let from_view = train_svc(&out.kernel, &labels, &SmoParams::with_c(1.0));
        let dense = KernelMatrix::from_dense(8, out.kernel.data().to_vec());
        let from_dense = train_svc(&dense, &labels, &SmoParams::with_c(1.0));
        assert_eq!(from_view.alphas, from_dense.alphas);
        assert_eq!(from_view.bias, from_dense.bias);
        assert_eq!(from_view.passes, from_dense.passes);
    }
}
