//! Row-band spill of encoded MPS states.
//!
//! At the paper's N = 64,000 the encoded states themselves (not just the
//! Gram matrix) can exceed RAM: keeping every MPS resident is the
//! all-states-resident requirement the engine's memory budget exists to
//! break. Spilling serializes states per row band with [`Mps::to_bytes`]
//! — the same wire format the round-robin distribution strategy ships
//! between processes — consuming the resident `Vec<Mps>` band by band so
//! peak memory never holds both copies. Workers then reload at most two
//! bands at a time (their tile's row and column bands).
//!
//! The byte format round-trips `f64`s exactly, so a spilled run is
//! bitwise identical to a resident run.

use qk_mps::Mps;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Why spilling or reloading states failed.
#[derive(Debug)]
pub enum SpillError {
    /// Filesystem failure underneath the spill directory.
    Io(std::io::Error),
    /// A band file was malformed or a state failed to decode.
    Corrupt {
        /// Band index.
        band: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill I/O error: {e}"),
            SpillError::Corrupt { band, reason } => {
                write!(f, "corrupt spill band {band}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

impl From<std::io::Error> for SpillError {
    fn from(e: std::io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// An on-disk store of MPS states, partitioned into row bands.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    band: usize,
    len: usize,
    owns_dir: bool,
}

impl SpillStore {
    /// Spills `states` into `dir`, one file per `band`-sized row band,
    /// consuming (and freeing) the resident states as it goes.
    pub fn spill(states: Vec<Mps>, dir: &Path, band: usize) -> Result<SpillStore, SpillError> {
        assert!(band >= 1, "band size must be at least 1");
        fs::create_dir_all(dir)?;
        let len = states.len();
        let mut iter = states.into_iter();
        let mut b = 0usize;
        let mut remaining = len;
        while remaining > 0 {
            let take = band.min(remaining);
            let mut buf = Vec::new();
            buf.extend_from_slice(&(take as u64).to_le_bytes());
            // Drain exactly one band from the iterator; each consumed
            // state is dropped (freed) after serialization.
            for _ in 0..take {
                let state = iter.next().expect("band arithmetic");
                let bytes = state.to_bytes();
                buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                buf.extend_from_slice(&bytes);
            }
            let mut f = fs::File::create(dir.join(format!("band_{b}.qks")))?;
            f.write_all(&buf)?;
            remaining -= take;
            b += 1;
        }
        Ok(SpillStore {
            dir: dir.to_path_buf(),
            band,
            len,
            owns_dir: true,
        })
    }

    /// Number of states in the store.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the store holds no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Band size the store was written with.
    pub fn band_size(&self) -> usize {
        self.band
    }

    /// Loads band `b` back into memory.
    pub fn load_band(&self, b: usize) -> Result<Vec<Mps>, SpillError> {
        let corrupt = |reason: String| SpillError::Corrupt { band: b, reason };
        let mut bytes = Vec::new();
        fs::File::open(self.dir.join(format!("band_{b}.qks")))?.read_to_end(&mut bytes)?;
        if bytes.len() < 8 {
            return Err(corrupt("missing band header".into()));
        }
        let count = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        let expected = self.band.min(self.len.saturating_sub(b * self.band));
        if count != expected {
            return Err(corrupt(format!(
                "band holds {count} states, expected {expected}"
            )));
        }
        let mut pos = 8usize;
        let mut states = Vec::with_capacity(count);
        for s in 0..count {
            if pos + 8 > bytes.len() {
                return Err(corrupt(format!("truncated before state {s}")));
            }
            let n = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            if pos + n > bytes.len() {
                return Err(corrupt(format!("truncated inside state {s}")));
            }
            let state = Mps::try_from_bytes(&bytes[pos..pos + n])
                .map_err(|e| corrupt(format!("state {s}: {e}")))?;
            pos += n;
            states.push(state);
        }
        if pos != bytes.len() {
            return Err(corrupt("trailing bytes after last state".into()));
        }
        Ok(states)
    }

    /// Opens a store somebody else already wrote (used by resumed jobs
    /// that spilled in an earlier life). Does not delete on drop.
    pub fn attach(dir: &Path, band: usize, len: usize) -> SpillStore {
        SpillStore {
            dir: dir.to_path_buf(),
            band,
            len,
            owns_dir: false,
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_circuit::Gate;
    use qk_mps::TruncationConfig;
    use qk_tensor::backend::CpuBackend;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "qk-gram-spill-test-{}-{tag}-{id}",
            std::process::id()
        ))
    }

    fn entangled_states(n: usize) -> Vec<Mps> {
        let be = CpuBackend::new();
        let cfg = TruncationConfig::default();
        (0..n)
            .map(|k| {
                let mut mps = Mps::plus_state(4);
                let g = Gate::Rxx(0.3 + 0.17 * k as f64).matrix();
                mps.apply_gate2(&be, &g, 1, &cfg);
                mps.apply_gate2(&be, &g, 2, &cfg);
                mps
            })
            .collect()
    }

    #[test]
    fn spill_and_reload_is_exact() {
        let dir = scratch("exact");
        let states = entangled_states(7);
        let originals = states.clone();
        let store = SpillStore::spill(states, &dir, 3).unwrap();
        assert_eq!(store.len(), 7);
        let mut reloaded = Vec::new();
        for b in 0..3 {
            reloaded.extend(store.load_band(b).unwrap());
        }
        assert_eq!(reloaded.len(), 7);
        for (a, b) in originals.iter().zip(&reloaded) {
            // Site tensors round-trip bitwise, so the inner product of a
            // reloaded state with its original is exactly the norm².
            assert_eq!(a.num_qubits(), b.num_qubits());
            for (sa, sb) in a.sites().iter().zip(b.sites()) {
                assert_eq!(sa.shape(), sb.shape());
                for (x, y) in sa.data().iter().zip(sb.data()) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits());
                    assert_eq!(x.im.to_bits(), y.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn short_final_band() {
        let dir = scratch("final");
        let store = SpillStore::spill(entangled_states(5), &dir, 4).unwrap();
        assert_eq!(store.load_band(0).unwrap().len(), 4);
        assert_eq!(store.load_band(1).unwrap().len(), 1);
        assert!(store.load_band(2).is_err());
    }

    #[test]
    fn corrupt_band_is_detected() {
        let dir = scratch("corrupt");
        let store = SpillStore::spill(entangled_states(4), &dir, 2).unwrap();
        let path = dir.join("band_1.qks");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            store.load_band(1),
            Err(SpillError::Corrupt { band: 1, .. })
        ));
        // Band 0 is untouched.
        assert_eq!(store.load_band(0).unwrap().len(), 2);
    }

    #[test]
    fn drop_removes_owned_dir() {
        let dir = scratch("cleanup");
        let store = SpillStore::spill(entangled_states(2), &dir, 2).unwrap();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }
}
