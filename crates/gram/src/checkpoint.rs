//! On-disk checkpoint store: a manifest binding the directory to one job
//! fingerprint, plus one checksummed file per completed tile.
//!
//! Layout:
//!
//! ```text
//! <dir>/manifest.qkg            # QKGRAM1\0 | fingerprint | kind | rows
//!                               #   | cols | tile | checksum
//! <dir>/tiles/t_<bi>_<bj>.qkt   # QKTILE1\0 | fingerprint | bi | bj
//!                               #   | rows | cols | payload f64s | checksum
//! ```
//!
//! All integers and floats are little-endian; checksums are FNV-1a 64
//! over every preceding byte of the file. Tiles are written to a
//! temporary name and renamed into place, so a SIGKILL can at worst
//! leave one torn temp file (swept on the next open) — and even a torn
//! final file fails its checksum and is recomputed rather than loaded.
//! A checkpoint directory has a single writer at a time (the manifest
//! binds it to one job); opening it sweeps debris from earlier lives.

use crate::fingerprint::{Fnv1a, JobKind, JobSpec};
use crate::tiles::Tile;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &[u8; 8] = b"QKGRAM1\0";
const TILE_MAGIC: &[u8; 8] = b"QKTILE1\0";
const MANIFEST_NAME: &str = "manifest.qkg";

/// Why a checkpoint directory could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure underneath the store.
    Io(std::io::Error),
    /// The manifest exists but records a different job fingerprint: the
    /// directory belongs to another computation and is rejected.
    Mismatch {
        /// Fingerprint of the job being run.
        expected: u64,
        /// Fingerprint recorded in the manifest.
        found: u64,
    },
    /// The manifest file itself is malformed or fails its checksum.
    CorruptManifest {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Mismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: job is {expected:#018x}, \
                 directory was written by {found:#018x}"
            ),
            CheckpointError::CorruptManifest { reason } => {
                write!(f, "corrupt checkpoint manifest: {reason}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A bounds-checked little-endian reader over a raw checkpoint buffer.
///
/// Every read returns `None` once the buffer runs short, so the decoders
/// built on it reject truncated or mangled files by construction instead
/// of panicking in a slice conversion.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("take(8) is 8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

/// The manifest record for one checkpoint directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Job fingerprint the directory is bound to.
    pub fingerprint: u64,
    /// Job kind.
    pub kind: JobKind,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Tile edge.
    pub tile: usize,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(49);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        buf.push(self.kind.tag());
        buf.extend_from_slice(&(self.rows as u64).to_le_bytes());
        buf.extend_from_slice(&(self.cols as u64).to_le_bytes());
        buf.extend_from_slice(&(self.tile as u64).to_le_bytes());
        let sum = crate::fingerprint::fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, CheckpointError> {
        let corrupt = |reason| CheckpointError::CorruptManifest { reason };
        Self::decode_checked(bytes).ok_or(()).map_err(|()| {
            // Re-walk just far enough to name the failure; the checked
            // decoder itself only says yes or no.
            if bytes.len() != 49 {
                corrupt("wrong length")
            } else if &bytes[..8] != MANIFEST_MAGIC {
                corrupt("bad magic")
            } else if crate::fingerprint::fnv1a64(&bytes[..41])
                != u64::from_le_bytes(bytes[41..49].try_into().expect("len checked"))
            {
                corrupt("checksum mismatch")
            } else {
                corrupt("unknown job kind")
            }
        })
    }

    /// The happy-path decoder: every read is bounds-checked through
    /// [`Cursor`], so any short or mangled buffer falls out as `None`.
    fn decode_checked(bytes: &[u8]) -> Option<Manifest> {
        if bytes.len() != 49 {
            return None;
        }
        let mut c = Cursor::new(bytes);
        if c.take(8)? != MANIFEST_MAGIC {
            return None;
        }
        let fingerprint = c.u64()?;
        let kind = match c.u8()? {
            0 => JobKind::Train,
            1 => JobKind::Block,
            _ => return None,
        };
        let rows = c.u64()? as usize;
        let cols = c.u64()? as usize;
        let tile = c.u64()? as usize;
        let sum = c.u64()?;
        if crate::fingerprint::fnv1a64(&bytes[..41]) != sum {
            return None;
        }
        Some(Manifest {
            fingerprint,
            kind,
            rows,
            cols,
            tile,
        })
    }
}

/// Outcome of a classified tile load ([`CheckpointStore::load_classified`]).
#[derive(Debug)]
pub enum TileLoad {
    /// No tile file exists — the tile was never checkpointed.
    Missing,
    /// A tile file existed but failed validation (torn, corrupted or
    /// from another job); it has been deleted and must be recomputed.
    Corrupt,
    /// The tile validated; its row-major payload.
    Loaded(Vec<f64>),
}

/// A checkpoint directory opened for one job.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    fingerprint: u64,
}

impl CheckpointStore {
    /// Opens (or initializes) `dir` for the given job.
    ///
    /// A fresh or empty directory is initialized with a new manifest. An
    /// existing manifest must carry the job's exact fingerprint —
    /// anything else is a hard [`CheckpointError::Mismatch`] /
    /// [`CheckpointError::CorruptManifest`] error, never silent reuse.
    pub fn open(dir: &Path, spec: &JobSpec) -> Result<CheckpointStore, CheckpointError> {
        let fingerprint = spec.fingerprint();
        fs::create_dir_all(dir.join("tiles"))?;
        // Sweep torn temp tiles a SIGKILL mid-store left behind; they
        // would otherwise accumulate across kill/resume cycles (each
        // life embeds its own pid in the temp name).
        if let Ok(entries) = fs::read_dir(dir.join("tiles")) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') && name.ends_with(".tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let manifest_path = dir.join(MANIFEST_NAME);
        match fs::read(&manifest_path) {
            Ok(bytes) => {
                let manifest = Manifest::decode(&bytes)?;
                if manifest.fingerprint != fingerprint {
                    return Err(CheckpointError::Mismatch {
                        expected: fingerprint,
                        found: manifest.fingerprint,
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let manifest = Manifest {
                    fingerprint,
                    kind: spec.kind,
                    rows: spec.rows,
                    cols: spec.cols,
                    tile: spec.tile,
                };
                let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
                fs::write(&tmp, manifest.encode())?;
                fs::rename(&tmp, &manifest_path)?;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            fingerprint,
        })
    }

    /// Reads this directory's manifest back.
    pub fn manifest(&self) -> Result<Manifest, CheckpointError> {
        Manifest::decode(&fs::read(self.dir.join(MANIFEST_NAME))?)
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn tile_file_name(bi: usize, bj: usize) -> String {
        format!("t_{bi}_{bj}.qkt")
    }

    fn tile_path(&self, bi: usize, bj: usize) -> PathBuf {
        self.dir.join("tiles").join(Self::tile_file_name(bi, bj))
    }

    /// Cheap presence probe: `true` when a (possibly stale) tile file
    /// exists for `tile` under `dir`. Used to recognize warm resumes
    /// before committing to expensive preparation (e.g. spilling
    /// states); validity is still checked at load time.
    pub fn tile_present(dir: &Path, tile: &Tile) -> bool {
        dir.join("tiles")
            .join(Self::tile_file_name(tile.bi, tile.bj))
            .exists()
    }

    /// Persists one completed tile payload (row-major `tile.rows x
    /// tile.cols`). Write-to-temp-then-rename keeps the final name
    /// atomic under SIGKILL.
    pub fn store(&self, tile: &Tile, payload: &[f64]) -> Result<(), CheckpointError> {
        debug_assert_eq!(payload.len(), tile.len());
        let mut buf = Vec::with_capacity(56 + payload.len() * 8 + 8);
        buf.extend_from_slice(TILE_MAGIC);
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        for v in [tile.bi, tile.bj, tile.rows, tile.cols] {
            buf.extend_from_slice(&(v as u64).to_le_bytes());
        }
        for v in payload {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut sum = Fnv1a::new();
        sum.update(&buf);
        buf.extend_from_slice(&sum.finish().to_le_bytes());

        let final_path = self.tile_path(tile.bi, tile.bj);
        let tmp = self.dir.join("tiles").join(format!(
            ".t_{}_{}.{}.tmp",
            tile.bi,
            tile.bj,
            std::process::id()
        ));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        drop(f);
        fs::rename(&tmp, &final_path)?;
        Ok(())
    }

    /// Attempts to load the persisted payload for `tile`.
    ///
    /// Returns `Ok(Some(values))` only when the file exists, matches the
    /// job fingerprint and tile geometry, and passes its checksum. A
    /// missing file is `Ok(None)`; a truncated, corrupted or mismatched
    /// file is *also* `Ok(None)` after the stale file is deleted — the
    /// engine then recomputes the tile instead of loading it.
    pub fn load(&self, tile: &Tile) -> Result<Option<Vec<f64>>, CheckpointError> {
        match self.load_classified(tile)? {
            TileLoad::Loaded(values) => Ok(Some(values)),
            TileLoad::Missing | TileLoad::Corrupt => Ok(None),
        }
    }

    /// Like [`CheckpointStore::load`], but distinguishes a tile that was
    /// never written from one that existed and failed validation (and
    /// was quarantined-by-deletion) — the engine's event journal records
    /// the two outcomes differently.
    pub fn load_classified(&self, tile: &Tile) -> Result<TileLoad, CheckpointError> {
        let path = self.tile_path(tile.bi, tile.bj);
        let mut bytes = Vec::new();
        match fs::File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(TileLoad::Missing),
            Err(e) => return Err(e.into()),
        }
        match Self::decode_tile(&bytes, self.fingerprint, tile) {
            Some(values) => Ok(TileLoad::Loaded(values)),
            None => {
                // Quarantine-by-deletion: the engine recomputes and
                // rewrites a valid replacement.
                let _ = fs::remove_file(&path);
                Ok(TileLoad::Corrupt)
            }
        }
    }

    fn decode_tile(bytes: &[u8], fingerprint: u64, tile: &Tile) -> Option<Vec<f64>> {
        let expected_len = 48usize
            .checked_add(tile.len().checked_mul(8)?)?
            .checked_add(8)?;
        if bytes.len() != expected_len {
            return None;
        }
        let mut c = Cursor::new(bytes);
        if c.take(8)? != TILE_MAGIC {
            return None;
        }
        if c.u64()? != fingerprint {
            return None;
        }
        for want in [tile.bi, tile.bj, tile.rows, tile.cols] {
            if c.u64()? != want as u64 {
                return None;
            }
        }
        let mut values = Vec::with_capacity(tile.len());
        for _ in 0..tile.len() {
            values.push(c.f64()?);
        }
        let sum = c.u64()?;
        if crate::fingerprint::fnv1a64(&bytes[..expected_len - 8]) != sum {
            return None;
        }
        Some(values)
    }

    /// Quarantines a tile file that keeps failing to load: deletes it so
    /// the engine recomputes and rewrites a valid replacement. Missing
    /// files are fine — quarantine is idempotent.
    pub fn quarantine(&self, tile: &Tile) -> Result<(), CheckpointError> {
        match fs::remove_file(self.tile_path(tile.bi, tile.bj)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiles::TilePlan;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "qk-gram-ckpt-test-{}-{tag}-{id}",
            std::process::id()
        ))
    }

    fn spec() -> JobSpec {
        JobSpec {
            encoding: 0xFEED,
            kind: JobKind::Train,
            rows: 10,
            cols: 10,
            tile: 4,
        }
    }

    #[test]
    fn roundtrip_store_and_load() {
        let dir = scratch("roundtrip");
        let spec = spec();
        let store = CheckpointStore::open(&dir, &spec).unwrap();
        let plan = TilePlan::symmetric(spec.rows, spec.tile);
        let tile = plan.tiles[1];
        let payload: Vec<f64> = (0..tile.len()).map(|k| (k as f64) * 0.125 - 0.3).collect();
        assert_eq!(store.load(&tile).unwrap(), None);
        store.store(&tile, &payload).unwrap();
        assert_eq!(store.load(&tile).unwrap(), Some(payload.clone()));
        // Reopen resumes: same fingerprint, tile still loadable.
        drop(store);
        let store = CheckpointStore::open(&dir, &spec).unwrap();
        assert_eq!(store.load(&tile).unwrap(), Some(payload));
        let m = store.manifest().unwrap();
        assert_eq!(m.fingerprint, spec.fingerprint());
        assert_eq!(m.tile, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_fingerprint_is_rejected() {
        let dir = scratch("mismatch");
        let spec_a = spec();
        CheckpointStore::open(&dir, &spec_a).unwrap();
        // Same shape, different encoding: a different computation.
        let spec_b = JobSpec {
            encoding: 0xBEEF,
            ..spec_a
        };
        match CheckpointStore::open(&dir, &spec_b) {
            Err(CheckpointError::Mismatch { expected, found }) => {
                assert_eq!(expected, spec_b.fingerprint());
                assert_eq!(found, spec_a.fingerprint());
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
        // Different tile size is a different fingerprint too.
        let spec_c = JobSpec { tile: 2, ..spec_a };
        assert!(matches!(
            CheckpointStore::open(&dir, &spec_c),
            Err(CheckpointError::Mismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = scratch("badmanifest");
        CheckpointStore::open(&dir, &spec()).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).unwrap();
        bytes[20] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir, &spec()),
            Err(CheckpointError::CorruptManifest { .. })
        ));
        // Truncated manifest is equally rejected.
        fs::write(&path, &bytes[..30]).unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir, &spec()),
            Err(CheckpointError::CorruptManifest { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tile_is_dropped_not_loaded() {
        let dir = scratch("badtile");
        let spec = spec();
        let store = CheckpointStore::open(&dir, &spec).unwrap();
        let plan = TilePlan::symmetric(spec.rows, spec.tile);
        let tile = plan.tiles[0];
        let payload = vec![0.5f64; tile.len()];
        store.store(&tile, &payload).unwrap();
        let path = store.tile_path(tile.bi, tile.bj);

        // Flip one payload bit: checksum fails, file is deleted.
        let mut bytes = fs::read(&path).unwrap();
        bytes[60] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(&tile).unwrap(), None);
        assert!(!path.exists(), "corrupt tile must be quarantined");

        // Truncated file: same treatment.
        store.store(&tile, &payload).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.load(&tile).unwrap(), None);
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_temp_tiles_are_swept_on_open() {
        let dir = scratch("sweep");
        let spec = spec();
        CheckpointStore::open(&dir, &spec).unwrap();
        // Simulate a SIGKILL mid-store: a torn temp next to a real tile.
        let torn = dir.join("tiles").join(".t_0_1.12345.tmp");
        fs::write(&torn, b"half-written").unwrap();
        let store = CheckpointStore::open(&dir, &spec).unwrap();
        assert!(!torn.exists(), "torn temp must be swept");
        // Real tiles survive the sweep.
        let plan = TilePlan::symmetric(spec.rows, spec.tile);
        let tile = plan.tiles[0];
        store.store(&tile, &vec![0.25; tile.len()]).unwrap();
        CheckpointStore::open(&dir, &spec).unwrap();
        assert_eq!(store.load(&tile).unwrap(), Some(vec![0.25; tile.len()]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tile_presence_probe() {
        let dir = scratch("presence");
        let spec = spec();
        let store = CheckpointStore::open(&dir, &spec).unwrap();
        let plan = TilePlan::symmetric(spec.rows, spec.tile);
        let tile = plan.tiles[0];
        assert!(!CheckpointStore::tile_present(&dir, &tile));
        store.store(&tile, &vec![1.0; tile.len()]).unwrap();
        assert!(CheckpointStore::tile_present(&dir, &tile));
        assert!(!CheckpointStore::tile_present(&dir, &plan.tiles[1]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tile_from_other_job_is_not_loaded() {
        let dir_a = scratch("foreign-a");
        let dir_b = scratch("foreign-b");
        let spec_a = spec();
        let spec_b = JobSpec {
            encoding: 0xD00D,
            ..spec_a
        };
        let store_a = CheckpointStore::open(&dir_a, &spec_a).unwrap();
        let store_b = CheckpointStore::open(&dir_b, &spec_b).unwrap();
        let plan = TilePlan::symmetric(spec_a.rows, spec_a.tile);
        let tile = plan.tiles[2];
        store_a.store(&tile, &vec![1.0; tile.len()]).unwrap();
        // Copy A's tile into B's directory: fingerprint check refuses it.
        fs::copy(
            store_a.tile_path(tile.bi, tile.bj),
            store_b.tile_path(tile.bi, tile.bj),
        )
        .unwrap();
        assert_eq!(store_b.load(&tile).unwrap(), None);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }
}
