//! # qk-gram
//!
//! An out-of-core, tiled, checkpoint/resume Gram-matrix engine.
//!
//! The paper's headline run (N = 64,000 training points) needs
//! `N(N-1)/2` ≈ 2 × 10⁹ MPS inner products and a ~32 GiB dense kernel —
//! a multi-day computation that a single-pass, all-in-RAM loop cannot
//! carry through a preemption or an OOM. This crate makes blocking,
//! spilling and resumability first-class:
//!
//! * [`tiles`] — the matrix is decomposed into fixed-edge tiles; a
//!   symmetric job enumerates only the upper block triangle.
//! * [`engine`] — a work-stealing worker pool contracts tiles and
//!   streams them to an assembler; every entry keeps the exact operand
//!   order of the single-pass path, so output is bitwise identical for
//!   any tile size, worker count, spill mode or resume history.
//! * [`checkpoint`] — each completed tile persists to a checksummed file
//!   under a manifest bound to the job fingerprint (encoding hash,
//!   truncation, shape, tile size). A killed job resumes from the last
//!   completed tile; a foreign or corrupt checkpoint is rejected or
//!   recomputed, never silently loaded.
//! * [`spill`] — encoded MPS states optionally spill to disk per row
//!   band under a memory budget, bounding peak memory below the
//!   all-states-resident requirement.
//! * [`view`] — the assembled [`TiledKernel`] implements
//!   `qk_svm::KernelSource`, so SVM training consumes it without a
//!   dense copy.
//! * [`metrics`] — progress, throughput and ETA counters in the same
//!   style as `qk-serve`'s metrics surface.
//! * [`rank`] — a rank-distributed drill over `qk-mpi` that survives
//!   worker-rank death: heartbeat detection at the coordinator, orphaned
//!   tiles adopted by survivors through the dead rank's checkpoint
//!   directory.
//!
//! ## Quickstart
//!
//! ```
//! use qk_gram::{GramConfig, GramEngine};
//! use qk_mps::Mps;
//! use qk_tensor::backend::CpuBackend;
//!
//! let states: Vec<Mps> = (0..6).map(|i| Mps::basis_state(&[(i % 2) as u8, 0, 1])).collect();
//! let backend = CpuBackend::new();
//! let engine = GramEngine::new(GramConfig::in_memory(4));
//! let out = engine.compute_gram(&states, &backend).unwrap();
//! assert_eq!(out.kernel.len(), 6);
//! assert_eq!(out.report.inner_products, 15);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod fingerprint;
pub mod metrics;
pub mod rank;
pub mod recompute;
pub mod spill;
pub mod tiles;
pub mod view;

pub use checkpoint::{CheckpointError, CheckpointStore, Manifest, TileLoad};
pub use config::GramConfig;
pub use engine::{BlockOutcome, GramEngine, GramError, GramOutcome, GramReport};
pub use fingerprint::{encoding_fingerprint, fnv1a64, JobKind, JobSpec};
pub use metrics::{GramMetrics, GramProgress};
pub use rank::{rank_distributed_gram, RankConfig, RankOutcome, RankReport, RankSummary};
pub use recompute::RecomputingRows;
pub use spill::{SpillError, SpillStore};
pub use tiles::{band_count, Tile, TilePlan};
pub use view::TiledKernel;
