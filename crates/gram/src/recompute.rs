//! Row-recompute hook for the crash-safe SVM trainer.
//!
//! [`RecomputingRows`] adapts an assembled [`TiledKernel`] (plus the
//! simulated MPS states it was built from) to `qk_svm`'s `RowSource`:
//! the fast path serves rows straight out of the assembled buffer,
//! while the degraded path re-derives a row entry by entry through the
//! same zipper contraction the engine used to build the kernel in the
//! first place — global `i < j` operand order, unit diagonal — so a
//! recomputed row is bitwise identical to the stored one. This is the
//! trainer-side analogue of the engine's quarantine-and-recompute
//! recovery for corrupt tiles.

use crate::view::TiledKernel;
use qk_mps::Mps;
use qk_svm::RowSource;
use qk_tensor::backend::ExecutionBackend;
use std::io;

/// A [`TiledKernel`] paired with its source states and backend, so
/// kernel rows can be recomputed from first principles when reading the
/// assembled buffer persistently fails.
pub struct RecomputingRows<'a> {
    kernel: &'a TiledKernel,
    states: &'a [Mps],
    backend: &'a dyn ExecutionBackend,
}

impl<'a> RecomputingRows<'a> {
    /// Binds the assembled kernel to the states it was computed from.
    ///
    /// # Panics
    /// Panics if the state count does not match the kernel order.
    pub fn new(
        kernel: &'a TiledKernel,
        states: &'a [Mps],
        backend: &'a dyn ExecutionBackend,
    ) -> RecomputingRows<'a> {
        assert_eq!(
            states.len(),
            kernel.len(),
            "one MPS state per kernel row required"
        );
        RecomputingRows {
            kernel,
            states,
            backend,
        }
    }
}

impl RowSource for RecomputingRows<'_> {
    fn order(&self) -> usize {
        self.kernel.len()
    }

    fn load_row(&self, i: usize, out: &mut [f64]) -> io::Result<()> {
        let n = self.kernel.len();
        out.copy_from_slice(&self.kernel.data()[i * n..(i + 1) * n]);
        Ok(())
    }

    fn recompute_row(&self, i: usize, out: &mut [f64]) -> io::Result<()> {
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = if i == j {
                1.0
            } else {
                // Global `i < j` operand order — the engine's pinned
                // convention — keeps the recomputed entry bitwise equal
                // to the assembled one.
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                self.states[a]
                    .inner_with(self.backend, &self.states[b])
                    .norm_sqr()
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GramConfig;
    use crate::engine::GramEngine;
    use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
    use qk_mps::{MpsSimulator, TruncationConfig};
    use qk_tensor::backend::CpuBackend;

    fn simulated_states(n: usize) -> Vec<Mps> {
        let be = CpuBackend::new();
        let ansatz = AnsatzConfig::new(2, 1, 0.7);
        let trunc = TruncationConfig::default();
        (0..n)
            .map(|i| {
                let row: Vec<f64> = (0..4).map(|j| ((i * 4 + j) % 9) as f64 * 0.22).collect();
                MpsSimulator::new(&be)
                    .with_truncation(trunc)
                    .simulate(&feature_map_circuit(&row, &ansatz))
                    .0
            })
            .collect()
    }

    /// A recomputed row must be bitwise identical to the assembled one,
    /// for every row.
    #[test]
    fn recomputed_rows_match_assembled_rows_bitwise() {
        let states = simulated_states(9);
        let be = CpuBackend::new();
        let outcome = GramEngine::new(GramConfig::default())
            .compute_gram(&states, &be)
            .unwrap();
        let kernel = outcome.kernel;
        let source = RecomputingRows::new(&kernel, &states, &be);
        let n = kernel.len();
        let mut loaded = vec![0.0; n];
        let mut recomputed = vec![0.0; n];
        for i in 0..n {
            source.load_row(i, &mut loaded).unwrap();
            source.recompute_row(i, &mut recomputed).unwrap();
            for j in 0..n {
                assert_eq!(
                    loaded[j].to_bits(),
                    recomputed[j].to_bits(),
                    "entry ({i}, {j}) diverged"
                );
            }
        }
    }
}
