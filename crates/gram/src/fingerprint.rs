//! Job fingerprints: a 64-bit digest binding a checkpoint directory to
//! the exact computation that produced it.
//!
//! A resumed run must only ever load tiles that an identical job wrote:
//! same encoding (ansatz + truncation), same matrix shape, same tile
//! size, same job kind. All of that is folded into one FNV-1a digest
//! stored in the manifest and in every tile header; a mismatch rejects
//! the checkpoint outright instead of silently mixing incompatible
//! kernels.

use qk_circuit::AnsatzConfig;
use qk_mps::TruncationConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the checksum and fingerprint primitive for
/// the checkpoint format (fast, dependency-free, stable across
/// platforms; little-endian serialization keeps digests portable).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a, for checksumming streamed tile payloads without
/// buffering them twice.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds more bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Digest of the state-preparation encoding: ansatz hyperparameters and
/// truncation policy. Two state sets simulated with equal encodings from
/// equal rows are bitwise identical, so this is the right granularity
/// for checkpoint compatibility.
pub fn encoding_fingerprint(ansatz: &AnsatzConfig, truncation: &TruncationConfig) -> u64 {
    let mut buf = Vec::with_capacity(48);
    buf.extend_from_slice(&(ansatz.layers as u64).to_le_bytes());
    buf.extend_from_slice(&(ansatz.interaction_distance as u64).to_le_bytes());
    buf.extend_from_slice(&ansatz.gamma.to_bits().to_le_bytes());
    buf.extend_from_slice(&truncation.cutoff.to_bits().to_le_bytes());
    // None and Some(cap) must hash differently even when cap is 0.
    match truncation.max_bond {
        None => buf.extend_from_slice(&[0u8; 9]),
        Some(cap) => {
            buf.push(1);
            buf.extend_from_slice(&(cap as u64).to_le_bytes());
        }
    }
    fnv1a64(&buf)
}

/// What a Gram job computes: the symmetric train matrix or a rectangular
/// test-against-train block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Symmetric `n x n` training kernel (upper triangle contracted).
    Train,
    /// Rectangular `rows x cols` inference block.
    Block,
}

impl JobKind {
    pub(crate) fn tag(self) -> u8 {
        match self {
            JobKind::Train => 0,
            JobKind::Block => 1,
        }
    }

    /// Stable lowercase name used in journal events and reports.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Train => "train",
            JobKind::Block => "block",
        }
    }
}

/// The identity of one Gram job, hashed into the checkpoint fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Encoding digest ([`encoding_fingerprint`] or caller-chosen).
    pub encoding: u64,
    /// Job kind.
    pub kind: JobKind,
    /// Matrix rows (`n` for [`JobKind::Train`], test count for blocks).
    pub rows: usize,
    /// Matrix columns (`n` for [`JobKind::Train`], train count for blocks).
    pub cols: usize,
    /// Tile edge length.
    pub tile: usize,
}

impl JobSpec {
    /// The job fingerprint stored in the manifest and every tile header.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = [0u8; 41];
        buf[..8].copy_from_slice(&self.encoding.to_le_bytes());
        buf[8] = self.kind.tag();
        buf[9..17].copy_from_slice(&(self.rows as u64).to_le_bytes());
        buf[17..25].copy_from_slice(&(self.cols as u64).to_le_bytes());
        buf[25..33].copy_from_slice(&(self.tile as u64).to_le_bytes());
        // Format/kernel version: bump to invalidate old checkpoints
        // wholesale. v2 = the blocked zipper inner-product kernel, whose
        // floating-point operation order differs from v1's contract-based
        // path by ~1e-12 — restoring v1 tiles next to freshly computed v2
        // tiles would silently break the engine's bitwise-identical-to-
        // clean-run guarantee, so v1 checkpoints must recompute instead.
        buf[33..41].copy_from_slice(&2u64.to_le_bytes());
        fnv1a64(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn encoding_fingerprint_separates_configs() {
        let a = AnsatzConfig::new(2, 1, 0.1);
        let t = TruncationConfig::default();
        let base = encoding_fingerprint(&a, &t);
        assert_eq!(base, encoding_fingerprint(&a, &t));
        assert_ne!(
            base,
            encoding_fingerprint(&AnsatzConfig::new(3, 1, 0.1), &t)
        );
        assert_ne!(
            base,
            encoding_fingerprint(&AnsatzConfig::new(2, 2, 0.1), &t)
        );
        assert_ne!(
            base,
            encoding_fingerprint(&AnsatzConfig::new(2, 1, 0.2), &t)
        );
        assert_ne!(
            base,
            encoding_fingerprint(&a, &TruncationConfig::with_cutoff(1e-8))
        );
        assert_ne!(
            base,
            encoding_fingerprint(&a, &TruncationConfig::capped(1e-16, 0))
        );
    }

    #[test]
    fn job_fingerprint_separates_jobs() {
        let spec = JobSpec {
            encoding: 7,
            kind: JobKind::Train,
            rows: 100,
            cols: 100,
            tile: 32,
        };
        let base = spec.fingerprint();
        assert_eq!(base, spec.fingerprint());
        assert_ne!(
            base,
            JobSpec {
                encoding: 8,
                ..spec
            }
            .fingerprint()
        );
        assert_ne!(base, JobSpec { tile: 16, ..spec }.fingerprint());
        assert_ne!(base, JobSpec { rows: 99, ..spec }.fingerprint());
        assert_ne!(
            base,
            JobSpec {
                kind: JobKind::Block,
                ..spec
            }
            .fingerprint()
        );
    }
}
