//! Tile decomposition of Gram jobs.
//!
//! The matrix is cut into fixed-edge square tiles (edge tiles may be
//! smaller). A symmetric train job only enumerates the upper block
//! triangle `bi <= bj`; diagonal tiles carry the full square block (unit
//! diagonal plus the in-block mirror) so assembly is a plain row copy.
//! Tiles are ordered row-band-major — consecutive tiles share their row
//! band, which is what makes the spill path's band cache effective.

use crate::fingerprint::JobKind;

/// One tile of the output matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Row band index.
    pub bi: usize,
    /// Column band index (`bi <= bj` for symmetric jobs).
    pub bj: usize,
    /// First matrix row covered.
    pub row0: usize,
    /// Rows covered.
    pub rows: usize,
    /// First matrix column covered.
    pub col0: usize,
    /// Columns covered.
    pub cols: usize,
}

impl Tile {
    /// Number of entries in the tile payload.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` for degenerate zero-area tiles (never produced by a plan).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inner products the engine must contract for this tile under the
    /// given job kind: diagonal train tiles only contract their strict
    /// upper triangle, everything else contracts every entry.
    pub fn inner_products(&self, kind: JobKind) -> usize {
        if kind == JobKind::Train && self.bi == self.bj {
            self.rows * self.rows.saturating_sub(1) / 2
        } else {
            self.len()
        }
    }
}

/// The full tile schedule for one job.
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Job kind the plan was built for.
    pub kind: JobKind,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Tile edge.
    pub tile: usize,
    /// Tiles in execution order (row-band-major).
    pub tiles: Vec<Tile>,
}

/// Number of bands covering `extent` rows or columns at a tile edge.
pub fn band_count(extent: usize, tile: usize) -> usize {
    extent.div_ceil(tile)
}

impl TilePlan {
    /// Plans a symmetric `n x n` train job: upper block triangle only.
    pub fn symmetric(n: usize, tile: usize) -> TilePlan {
        assert!(tile >= 1, "tile edge must be at least 1");
        let bands = band_count(n, tile);
        let mut tiles = Vec::with_capacity(bands * (bands + 1) / 2);
        for bi in 0..bands {
            for bj in bi..bands {
                tiles.push(Self::tile_at(bi, bj, n, n, tile));
            }
        }
        TilePlan {
            kind: JobKind::Train,
            rows: n,
            cols: n,
            tile,
            tiles,
        }
    }

    /// Plans a rectangular `rows x cols` block job: every tile.
    pub fn rectangular(rows: usize, cols: usize, tile: usize) -> TilePlan {
        assert!(tile >= 1, "tile edge must be at least 1");
        let row_bands = band_count(rows, tile);
        let col_bands = band_count(cols, tile);
        let mut tiles = Vec::with_capacity(row_bands * col_bands);
        for bi in 0..row_bands {
            for bj in 0..col_bands {
                tiles.push(Self::tile_at(bi, bj, rows, cols, tile));
            }
        }
        TilePlan {
            kind: JobKind::Block,
            rows,
            cols,
            tile,
            tiles,
        }
    }

    fn tile_at(bi: usize, bj: usize, rows: usize, cols: usize, tile: usize) -> Tile {
        let row0 = bi * tile;
        let col0 = bj * tile;
        Tile {
            bi,
            bj,
            row0,
            rows: tile.min(rows - row0),
            col0,
            cols: tile.min(cols - col0),
        }
    }

    /// Total inner products over the whole plan (`n(n-1)/2` for train
    /// jobs, `rows * cols` for blocks) — the count the manifest reports.
    pub fn inner_products(&self) -> usize {
        self.tiles.iter().map(|t| t.inner_products(self.kind)).sum()
    }

    /// Looks up the planned tile at band coordinates.
    pub fn find(&self, bi: usize, bj: usize) -> Option<&Tile> {
        self.tiles.iter().find(|t| t.bi == bi && t.bj == bj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_plan_covers_upper_triangle_once() {
        for (n, tile) in [(10usize, 3usize), (8, 4), (5, 5), (7, 10), (1, 2), (64, 16)] {
            let plan = TilePlan::symmetric(n, tile);
            let bands = band_count(n, tile);
            assert_eq!(plan.tiles.len(), bands * (bands + 1) / 2, "n={n} t={tile}");
            // Every (i, j) with i <= j is covered by exactly one tile.
            let mut cover = vec![0usize; n * n];
            for t in &plan.tiles {
                assert!(t.bi <= t.bj);
                assert!(!t.is_empty());
                for i in t.row0..t.row0 + t.rows {
                    for j in t.col0..t.col0 + t.cols {
                        cover[i * n + j] += 1;
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let expect = usize::from(i / tile <= j / tile);
                    assert_eq!(cover[i * n + j], expect, "({i},{j}) n={n} t={tile}");
                }
            }
            assert_eq!(plan.inner_products(), n * (n - 1) / 2, "n={n} t={tile}");
        }
    }

    #[test]
    fn rectangular_plan_covers_everything_once() {
        for (rows, cols, tile) in [(5usize, 9usize, 4usize), (3, 3, 3), (1, 7, 2), (6, 2, 8)] {
            let plan = TilePlan::rectangular(rows, cols, tile);
            let mut cover = vec![0usize; rows * cols];
            for t in &plan.tiles {
                for i in t.row0..t.row0 + t.rows {
                    for j in t.col0..t.col0 + t.cols {
                        cover[i * cols + j] += 1;
                    }
                }
            }
            assert!(cover.iter().all(|&c| c == 1), "{rows}x{cols} t={tile}");
            assert_eq!(plan.inner_products(), rows * cols);
        }
    }

    #[test]
    fn tiles_are_row_band_major() {
        let plan = TilePlan::symmetric(20, 4);
        let order: Vec<(usize, usize)> = plan.tiles.iter().map(|t| (t.bi, t.bj)).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }

    #[test]
    fn diagonal_tile_product_count() {
        let plan = TilePlan::symmetric(10, 4);
        let diag = plan.find(0, 0).unwrap();
        assert_eq!(diag.inner_products(JobKind::Train), 6); // C(4, 2)
        let off = plan.find(0, 1).unwrap();
        assert_eq!(off.inner_products(JobKind::Train), 16);
        let edge = plan.find(2, 2).unwrap();
        assert_eq!(edge.rows, 2);
        assert_eq!(edge.inner_products(JobKind::Train), 1);
    }
}
