//! Robustness drills for the serving path: supervised worker panics,
//! deadlines, admission control, and the shutdown contract that every
//! accepted request gets a reply (never a hang, never a drop).

use qk_chaos::{sites, Fault, FaultPlan, Trigger};
use qk_circuit::AnsatzConfig;
use qk_core::QuantumKernelModel;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_serve::{KernelServer, ServeConfig, ServeError};
use qk_svm::SmoParams;
use qk_tensor::backend::CpuBackend;
use std::sync::OnceLock;
use std::time::Duration;

const FEATURES: usize = 4;

/// One small trained model, shipped between tests as its byte artifact
/// (training is the slow part; decoding is microseconds).
fn model_artifact() -> &'static [u8] {
    static ARTIFACT: OnceLock<Vec<u8>> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        let data = generate(&SyntheticConfig::small(23));
        let split = prepare_experiment(&data, 20, FEATURES, 23);
        QuantumKernelModel::fit(
            &split.train.features,
            &split.train.label_signs(),
            &AnsatzConfig::new(2, 1, 0.6),
            &TruncationConfig::default(),
            &SmoParams::with_c(1.0),
            &CpuBackend::new(),
        )
        .to_bytes()
    })
}

fn fresh_model() -> QuantumKernelModel {
    QuantumKernelModel::from_bytes(model_artifact())
}

fn row(i: usize) -> Vec<f64> {
    (0..FEATURES)
        .map(|j| ((i * FEATURES + j) % 17) as f64 * 0.11)
        .collect()
}

#[test]
fn worker_panic_error_replies_batch_and_restarts() {
    // First batch panics at the injected site; the request gets an
    // explicit WorkerPanicked reply, the worker restarts in place, and
    // the next request is served normally by the same (sole) worker.
    let chaos = FaultPlan::new(21)
        .inject(sites::SERVE_BATCH, Fault::Panic, Trigger::At(vec![0]))
        .arm();
    let server = KernelServer::start(
        fresh_model(),
        &ServeConfig {
            chaos,
            max_wait: Duration::ZERO,
            ..ServeConfig::with_workers(1)
        },
    );
    let handle = server.handle();
    let first = handle.submit(row(0)).unwrap().wait();
    assert!(
        matches!(first, Err(ServeError::WorkerPanicked)),
        "{first:?}"
    );
    let second = handle.submit(row(1)).unwrap().wait();
    assert!(second.is_ok(), "restarted worker must serve: {second:?}");
    let snap = server.shutdown();
    assert_eq!(snap.workers_restarted, 1);
    assert_eq!(snap.faults_injected, 1);
    assert_eq!(snap.completed, 1);
}

#[test]
fn expired_deadline_sheds_with_explicit_error() {
    // A zero deadline is unmeetable: every request is shed at batch
    // time with DeadlineExceeded, never silently dropped or served
    // stale.
    let server = KernelServer::start(
        fresh_model(),
        &ServeConfig {
            deadline: Some(Duration::ZERO),
            ..ServeConfig::with_workers(1)
        },
    );
    let handle = server.handle();
    let pending: Vec<_> = (0..4).map(|i| handle.submit(row(i)).unwrap()).collect();
    for p in pending {
        assert!(matches!(p.wait(), Err(ServeError::DeadlineExceeded)));
    }
    let snap = server.shutdown();
    assert_eq!(snap.requests_shed, 4);
    assert_eq!(snap.completed, 0);
}

#[test]
fn admission_control_sheds_above_queue_depth() {
    // Stall the only worker so the queue backs up, then submit past the
    // shed depth: overflow is refused immediately with Shed (no hang,
    // no QueueFull-blocking), and every accepted request still gets an
    // answer.
    let chaos = FaultPlan::new(22)
        .inject(
            sites::SERVE_QUEUE,
            Fault::Stall(Duration::from_millis(100)),
            Trigger::First(1),
        )
        .arm();
    let server = KernelServer::start(
        fresh_model(),
        &ServeConfig {
            chaos,
            shed_queue_depth: Some(2),
            max_wait: Duration::ZERO,
            max_batch: 1,
            ..ServeConfig::with_workers(1)
        },
    );
    let handle = server.handle();
    // One request wakes the worker into its injected stall...
    let head = handle.submit(row(0)).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    // ...then flood: the queue absorbs `shed_queue_depth` requests and
    // sheds the rest explicitly.
    let mut accepted = vec![head];
    let mut shed = 0usize;
    for i in 1..12 {
        match handle.submit(row(i)) {
            Ok(p) => accepted.push(p),
            Err(ServeError::Shed) => shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(shed > 0, "flooding past shed depth must shed");
    for p in accepted {
        assert!(p.wait().is_ok());
    }
    let snap = server.shutdown();
    assert_eq!(snap.requests_shed as usize, shed);
    assert!(snap.faults_injected >= 1);
}

#[test]
fn shutdown_with_full_queue_answers_every_accepted_request() {
    // The shutdown contract under contention: submitters race a
    // shutdown over a tiny queue. Every accepted ticket must resolve —
    // success or an explicit error — and every refused submit must be
    // an explicit error. Nothing may hang or vanish.
    let server = KernelServer::start(
        fresh_model(),
        &ServeConfig {
            queue_capacity: 2,
            max_wait: Duration::ZERO,
            ..ServeConfig::with_workers(2)
        },
    );
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let handle = server.handle();
            std::thread::spawn(move || {
                let mut accepted = 0usize;
                let mut refused = 0usize;
                for i in 0..200 {
                    match handle.try_submit(row(t * 200 + i)) {
                        Ok(pending) => {
                            // An accepted ticket must always resolve to
                            // a genuine answer — the FIFO shutdown
                            // protocol forbids dropping it.
                            pending.wait().expect("accepted request must be answered");
                            accepted += 1;
                        }
                        Err(ServeError::QueueFull) | Err(ServeError::Closed) => refused += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                (accepted, refused)
            })
        })
        .collect();
    // Shut down while submitters are mid-flood.
    std::thread::sleep(Duration::from_millis(5));
    let snap = server.shutdown();
    let mut accepted = 0usize;
    let mut refused = 0usize;
    for t in submitters {
        let (a, r) = t.join().unwrap();
        accepted += a;
        refused += r;
    }
    // Every one of the 800 submits resolved explicitly — accepted and
    // answered, or refused with a typed error. Nothing hung or leaked.
    assert_eq!(accepted + refused, 800);
    assert_eq!(accepted as u64, snap.submitted);
    assert_eq!(snap.submitted, snap.completed);
    assert_eq!(snap.queue_depth, 0);
}

#[test]
fn try_start_reports_spawn_failure_without_leak() {
    // Spawning zero-normalized workers still works through the
    // fallible path; a healthy host can't force a spawn error, so this
    // pins the Ok plumbing and clean shutdown of the fallible API.
    let server = KernelServer::try_start(fresh_model(), &ServeConfig::with_workers(1)).unwrap();
    let handle = server.handle();
    assert!(handle.submit(row(3)).unwrap().wait().is_ok());
    server.shutdown();
}
