//! Property tests pinning the batch and serve paths to the sequential
//! oracle: for arbitrary feature vectors, `predict_batch`,
//! `predict_from_states`, and the full queue/batcher/cache pipeline
//! (cache on and off) must produce *bitwise identical* decision values
//! to `predict_one` called point-by-point.

use proptest::prelude::*;
use qk_circuit::AnsatzConfig;
use qk_core::QuantumKernelModel;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::{Mps, TruncationConfig};
use qk_serve::{KernelServer, ServeConfig};
use qk_svm::SmoParams;
use qk_tensor::backend::CpuBackend;
use std::sync::OnceLock;
use std::time::Duration;

const FEATURES: usize = 4;

/// One small trained model, shipped between cases as its byte artifact
/// (training is the slow part; decoding is microseconds).
fn model_artifact() -> &'static [u8] {
    static ARTIFACT: OnceLock<Vec<u8>> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        let data = generate(&SyntheticConfig::small(23));
        let split = prepare_experiment(&data, 20, FEATURES, 23);
        QuantumKernelModel::fit(
            &split.train.features,
            &split.train.label_signs(),
            &AnsatzConfig::new(2, 1, 0.6),
            &TruncationConfig::default(),
            &SmoParams::with_c(1.0),
            &CpuBackend::new(),
        )
        .to_bytes()
    })
}

fn fresh_model() -> QuantumKernelModel {
    QuantumKernelModel::from_bytes(model_artifact())
}

/// Feature rows in the rescaled (0, 2) domain the ansatz expects.
fn rows_strategy(max_rows: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..2.0, FEATURES), 1..=max_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `predict_batch` is the sequential path applied per point.
    #[test]
    fn predict_batch_matches_predict_one(rows in rows_strategy(5)) {
        let be = CpuBackend::new();
        let model = fresh_model();
        let batch = model.predict_batch(&rows, &be);
        prop_assert_eq!(batch.len(), rows.len());
        for (x, b) in rows.iter().zip(&batch) {
            let one = model.predict_one(x, &be);
            prop_assert_eq!(one.decision_value, b.decision_value);
            prop_assert_eq!(one.label, b.label);
        }
    }

    /// The block-based batch API over pre-simulated states is bitwise
    /// identical to the fused path, duplicates included.
    #[test]
    fn predict_from_states_matches_predict_one(rows in rows_strategy(4)) {
        let be = CpuBackend::new();
        let model = fresh_model();
        // Duplicate every row so shared states are exercised.
        let mut doubled = rows.clone();
        doubled.extend(rows.iter().cloned());
        let states: Vec<Mps> = doubled.iter().map(|x| model.encode(x, &be)).collect();
        let refs: Vec<&Mps> = states.iter().collect();
        let batch = model.predict_from_states(&refs, &be);
        for (x, b) in doubled.iter().zip(&batch) {
            prop_assert_eq!(model.predict_one(x, &be).decision_value, b.decision_value);
        }
    }

    /// The served pipeline — queue, micro-batching, dedup, cache on or
    /// off — answers with the sequential oracle's exact decision values.
    #[test]
    fn serve_path_matches_predict_one(rows in rows_strategy(4), cache_on in any::<bool>()) {
        let be = CpuBackend::new();
        let model = fresh_model();
        let oracle: Vec<f64> = rows
            .iter()
            .map(|x| model.predict_one(x, &be).decision_value)
            .collect();

        let server = KernelServer::start(model, &ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            cache_capacity: if cache_on { 1024 } else { 0 },
            ..ServeConfig::default()
        });
        let handle = server.handle();
        // Each row three times, interleaved: duplicates coalesce within
        // and across batches.
        let indices: Vec<usize> = (0..3 * rows.len()).map(|r| r % rows.len()).collect();
        let pending: Vec<_> = indices
            .iter()
            .map(|&i| handle.submit(rows[i].clone()).expect("accepted"))
            .collect();
        for (&i, p) in indices.iter().zip(pending) {
            let served = p.wait().expect("answered");
            prop_assert_eq!(
                served.prediction.decision_value,
                oracle[i],
                "row {} diverged (cache_on = {})", i, cache_on
            );
        }
        let snapshot = server.shutdown();
        prop_assert_eq!(snapshot.completed, 3 * rows.len() as u64);
        if !cache_on {
            prop_assert_eq!(snapshot.cache.entries, 0);
            prop_assert_eq!(snapshot.cache.hits, 0);
        }
    }
}
