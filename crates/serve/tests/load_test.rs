//! Load and lifecycle tests for the serving layer: the ISSUE 2
//! acceptance run (1000+ requests, 4 workers, mixed duplicate/fresh
//! points, hot-swap mid-load) plus shutdown and deploy edge cases.

use qk_circuit::AnsatzConfig;
use qk_core::QuantumKernelModel;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_serve::{KernelServer, ServeConfig, ServeError, ServedPrediction};
use qk_svm::SmoParams;
use qk_tensor::backend::CpuBackend;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const FEATURES: usize = 6;

fn train_model(subsample_seed: u64, gamma: f64) -> QuantumKernelModel {
    let data = generate(&SyntheticConfig {
        noise: 1.5,
        num_features: 8,
        num_illicit: 80,
        num_licit: 120,
        ..SyntheticConfig::small(13)
    });
    let split = prepare_experiment(&data, 75, FEATURES, subsample_seed);
    QuantumKernelModel::fit(
        &split.train.features,
        &split.train.label_signs(),
        &AnsatzConfig::new(2, 1, gamma),
        &TruncationConfig::default(),
        &SmoParams::with_c(1.0),
        &CpuBackend::new(),
    )
}

/// Deterministic query pool in the ansatz's (0, 2) feature domain, with
/// pairwise-distinct quantized keys at the default scale.
fn query_pool(count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..FEATURES)
                .map(|j| {
                    if j == 0 {
                        // Unique first coordinate: distinct pool indices
                        // must never share a quantized key.
                        0.05 + i as f64 * 0.045
                    } else {
                        ((i * FEATURES + 3 * j + 1) % 17) as f64 * 0.118
                    }
                })
                .collect()
        })
        .collect()
}

/// The acceptance load test: 1000 requests through 4 workers with heavy
/// duplication, a hot-swap in the middle, and a per-version sequential
/// oracle.
#[test]
fn load_1000_requests_4_workers_with_hot_swap() {
    const CLIENTS: usize = 4;
    const PER_PHASE: usize = 125; // per client, per phase => 1000 total
    const POOL: usize = 40;

    let be = CpuBackend::new();
    let model_v1 = train_model(7, 0.5);
    let model_v2 = train_model(8, 0.5); // same encoding: cache survives
    let pool = query_pool(POOL);

    // Sequential oracle, per version: the serve path must be bitwise
    // identical to predict_one on whichever version answered.
    let oracle_v1: Vec<f64> = pool
        .iter()
        .map(|x| model_v1.predict_one(x, &be).decision_value)
        .collect();
    let oracle_v2: Vec<f64> = pool
        .iter()
        .map(|x| model_v2.predict_one(x, &be).decision_value)
        .collect();

    let server = KernelServer::start(
        model_v1,
        &ServeConfig {
            workers: CLIENTS,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            queue_capacity: 32, // small: backpressure is exercised
            ..ServeConfig::default()
        },
    );
    // Phase barrier: all clients finish phase 1 -> deploy -> phase 2.
    let swap = Arc::new(Barrier::new(CLIENTS + 1));
    let mut sims_after_phase1 = 0u64;

    let responses: Vec<(usize, u64, ServedPrediction)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let handle = server.handle();
                let pool = &pool;
                let swap = Arc::clone(&swap);
                scope.spawn(move || {
                    let mut got = Vec::with_capacity(2 * PER_PHASE);
                    for phase in 0..2u64 {
                        // Pipelined submissions: many in flight at once,
                        // mixing fresh points with duplicates (the pool
                        // is much smaller than the request count).
                        let indices: Vec<usize> = (0..PER_PHASE)
                            .map(|r| (c * 31 + r * 7 + phase as usize * 3) % POOL)
                            .collect();
                        let pending: Vec<_> = indices
                            .iter()
                            .map(|&i| handle.submit(pool[i].clone()).expect("accepted"))
                            .collect();
                        for (&i, p) in indices.iter().zip(pending) {
                            got.push((i, phase + 1, p.wait().expect("answered")));
                        }
                        if phase == 0 {
                            swap.wait(); // everyone done with phase 1
                            swap.wait(); // deploy finished
                        }
                    }
                    got
                })
            })
            .collect();

        swap.wait(); // all phase-1 responses are in
        let before_swap = server.snapshot();
        assert_eq!(before_swap.completed, (CLIENTS * PER_PHASE) as u64);
        sims_after_phase1 = before_swap.simulations;
        let summary = server.deploy(model_v2);
        assert_eq!(summary.version, 2);
        assert!(!summary.encoding_changed, "same ansatz keeps the epoch");
        swap.wait();

        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });

    // Hot-swap mid-load loses no in-flight request: every submission
    // was answered (wait() above panics otherwise) and accounted.
    assert_eq!(responses.len(), 2 * CLIENTS * PER_PHASE);

    let mut v1_seen = 0u64;
    let mut v2_seen = 0u64;
    let mut hits = 0u64;
    for (i, phase, served) in &responses {
        // Phase 1 completed strictly before the deploy; phase 2 was
        // submitted strictly after it returned.
        let expected_version = *phase;
        assert_eq!(
            served.model_version, expected_version,
            "phase {phase} answered by v{}",
            served.model_version
        );
        let oracle = if served.model_version == 1 {
            oracle_v1[*i]
        } else {
            oracle_v2[*i]
        };
        assert_eq!(
            served.prediction.decision_value, oracle,
            "request for pool[{i}] diverged from the v{} oracle",
            served.model_version
        );
        match served.model_version {
            1 => v1_seen += 1,
            _ => v2_seen += 1,
        }
        hits += u64::from(served.cache_hit);
        assert!(served.batch_size >= 1);
    }
    assert_eq!(v1_seen, (CLIENTS * PER_PHASE) as u64);
    assert_eq!(v2_seen, (CLIENTS * PER_PHASE) as u64);
    assert!(hits > 0, "duplicate-heavy load must hit the cache");

    let last = server.shutdown();
    assert_eq!(last.completed, 2 * (CLIENTS * PER_PHASE) as u64);
    assert_eq!(last.queue_depth, 0);
    // Every pool point was cached during phase 1 (racing workers may
    // have simulated a key redundantly, hence <=), and the same-epoch
    // hot-swap preserved the cache: phase 2 simulated nothing.
    assert!(sims_after_phase1 >= POOL as u64);
    assert!(sims_after_phase1 <= (CLIENTS * POOL) as u64);
    assert_eq!(
        last.simulations, sims_after_phase1,
        "cache must survive a same-encoding hot-swap"
    );
    assert!(last.cache_hit_rate > 0.0);
    // Note: `last.cache.hits` counts unique-key lookups, while `hits`
    // counts per-request flags — in-batch duplicates make the latter
    // larger, so only positivity is comparable.
    assert!(last.cache.hits > 0);
    // The p99 tail is reported and ordered.
    assert!(last.latency.p99 > Duration::ZERO, "p99 must be reported");
    assert!(last.latency.p50 <= last.latency.p95);
    assert!(last.latency.p95 <= last.latency.p99);
    assert!(last.latency.p99 <= last.latency.max);
    assert!(last.throughput_rps > 0.0);
    assert!(last.max_batch_size >= 1);
}

#[test]
fn graceful_shutdown_answers_every_accepted_request() {
    let server = KernelServer::start(
        train_model(7, 0.5),
        &ServeConfig {
            workers: 2,
            queue_capacity: 64,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let pool = query_pool(10);
    let pending: Vec<_> = (0..50)
        .map(|r| handle.submit(pool[r % 10].clone()).expect("accepted"))
        .collect();
    // Shut down with requests still queued: all must be answered first.
    let snapshot = server.shutdown();
    for p in pending {
        p.wait().expect("accepted request answered across shutdown");
    }
    assert_eq!(snapshot.completed, 50);
    assert_eq!(snapshot.queue_depth, 0);

    // The handle outlives the server and fails cleanly.
    assert_eq!(
        handle.submit(pool[0].clone()).err(),
        Some(ServeError::Closed)
    );
    assert_eq!(
        handle.try_submit(pool[0].clone()).err(),
        Some(ServeError::Closed)
    );
}

#[test]
fn encoding_change_bumps_epoch_and_flushes_cache() {
    let server = KernelServer::start(train_model(7, 0.5), &ServeConfig::with_workers(1));
    let handle = server.handle();
    let x = query_pool(1).remove(0);

    let first = handle.submit(x.clone()).unwrap().wait().unwrap();
    assert!(!first.cache_hit);
    let again = handle.submit(x.clone()).unwrap().wait().unwrap();
    assert!(again.cache_hit, "repeat of the same point must hit");

    // Deploy with a different gamma: encodings are stale.
    let summary = server.deploy(train_model(7, 0.9));
    assert!(summary.encoding_changed);
    assert_eq!(summary.encoding_epoch, 2);

    let after = handle.submit(x.clone()).unwrap().wait().unwrap();
    assert_eq!(after.model_version, 2);
    assert!(!after.cache_hit, "old-epoch encodings must not serve v2");
    let snap = server.shutdown();
    assert_eq!(snap.encoding_epoch, 2);
    assert_eq!(snap.cache.entries, 1, "flushed, then one fresh entry");
}

#[test]
fn corrupt_deploy_is_rejected_without_disturbing_service() {
    let model = train_model(7, 0.5);
    let mut artifact = model.to_bytes();
    let server = KernelServer::start(model, &ServeConfig::with_workers(1));
    artifact.truncate(artifact.len() - 5);
    assert!(server.deploy_bytes(&artifact).is_err());
    // Still serving v1.
    let handle = server.handle();
    let served = handle
        .submit(query_pool(1).remove(0))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(served.model_version, 1);
}

#[test]
fn feature_count_mismatch_is_rejected_at_submit() {
    let server = KernelServer::start(train_model(7, 0.5), &ServeConfig::with_workers(1));
    let handle = server.handle();
    assert_eq!(
        handle.submit(vec![0.1, 0.2]).err(),
        Some(ServeError::FeatureCount {
            expected: FEATURES,
            got: 2
        })
    );
    assert_eq!(server.shutdown().rejected, 1);
}

#[test]
fn unrepresentable_features_are_rejected_at_submit() {
    // NaN casts to grid 0; infinities and huge finite values saturate
    // at the i64 grid edge: accepting any of them would collide with
    // legitimate keys and poison the encoding cache.
    let server = KernelServer::start(train_model(7, 0.5), &ServeConfig::with_workers(1));
    let handle = server.handle();
    let cases = [
        (0, f64::NAN),
        (3, f64::INFINITY),
        (5, f64::NEG_INFINITY),
        (2, 1e15), // finite, but saturates at the default 1e6 scale
    ];
    for (index, bad) in cases {
        let mut x = query_pool(1).remove(0);
        x[index] = bad;
        assert_eq!(
            handle.submit(x).err(),
            Some(ServeError::InvalidFeature { index }),
            "{bad} at {index}"
        );
    }
    assert_eq!(server.shutdown().rejected, 4);
}
