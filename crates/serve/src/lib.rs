//! # qk-serve
//!
//! A concurrent batched-inference serving layer over
//! [`qk_core::QuantumKernelModel`] — the deployment half of the paper's
//! Section III-A story, built for the ROADMAP's "heavy traffic" target.
//!
//! Classifying a fresh point costs one circuit simulation (~2 s at the
//! paper's 165 qubits) plus a cheap kernel row against the retained
//! training states. This crate turns that single-caller workflow into a
//! long-running service:
//!
//! * [`server`] — a bounded submission queue with backpressure, a
//!   micro-batching worker pool (coalesce up to `max_batch` requests or
//!   `max_wait`, whichever first), and a graceful-shutdown protocol that
//!   answers every accepted request.
//! * [`cache`] — an LRU *encoding cache* keyed by quantized feature
//!   vectors: repeated and near-duplicate points skip the dominant
//!   simulation cost entirely and pay only the inner-product phase.
//! * [`registry`] — versioned models with atomic hot-swap; in-flight
//!   batches drain on the old version while new batches serve the new
//!   one, and cached encodings survive any deploy that keeps the
//!   encoding parameters.
//! * [`metrics`] — throughput, p50/p95/p99 latency, cache hit rate,
//!   queue depth, and batching telemetry as one [`MetricsSnapshot`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use qk_serve::{KernelServer, ServeConfig};
//! # fn model() -> qk_core::QuantumKernelModel { unimplemented!() }
//!
//! let server = KernelServer::start(model(), &ServeConfig::default());
//! let handle = server.handle();
//! let pending = handle.submit(vec![0.3; 10]).unwrap();
//! let served = pending.wait().unwrap();
//! println!("label {} (cache hit: {})", served.prediction.label, served.cache_hit);
//! println!("{}", server.shutdown());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod metrics;
pub mod registry;
pub mod server;

pub use cache::{CacheKey, CacheStats, EncodingCache, Quantizer};
pub use config::ServeConfig;
pub use metrics::{LatencySnapshot, MetricsSnapshot};
pub use registry::{DeploySummary, ModelRegistry, ModelVersion};
pub use server::{KernelServer, PendingPrediction, ServeError, ServeHandle, ServedPrediction};
