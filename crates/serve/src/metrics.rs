//! Serving telemetry: counters, a latency histogram, and snapshots.
//!
//! Instruments live in the server's shared [`qk_obs`] registry (names
//! under `serve.*`), so the same counters that feed
//! [`MetricsSnapshot`] also appear in the unified `ObsReport` written
//! at shutdown. Latencies land in `qk-obs`'s logarithmic
//! (power-of-two microsecond) buckets: recording is lock-brief and
//! constant-size while still resolving the tail percentiles the
//! serving story cares about; quantiles report a bucket's upper edge
//! (clamped to the true maximum), i.e. p99 is never under-reported.
//! Follows the `core::timing` convention of measuring durations with
//! monotonic instants and reporting `Duration`s.

use crate::cache::CacheStats;
use qk_obs::{Counter, Gauge, Histogram, Obs};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Latency percentiles for one snapshot, plus the full bucket array so
/// downstream tooling can recompute any quantile offline.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySnapshot {
    /// Median request latency (enqueue to reply).
    pub p50: Duration,
    /// 95th percentile latency.
    pub p95: Duration,
    /// 99th percentile latency.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
    /// Mean latency.
    pub mean: Duration,
    /// Number of recorded request latencies.
    pub count: u64,
    /// Power-of-two microsecond buckets: `buckets[i]` counts latencies
    /// in `[2^i, 2^(i+1))` µs ([`qk_obs::BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

/// Latency summary for one pipeline stage (`serve.stage.*` histogram).
#[derive(Debug, Clone, Serialize)]
pub struct StageLatency {
    /// Stage name: `queue`, `coalesce`, `encode`, `kernel` or `reply`.
    pub stage: String,
    /// Median stage latency.
    pub p50: Duration,
    /// 99th percentile stage latency.
    pub p99: Duration,
    /// Worst observed stage latency.
    pub max: Duration,
    /// Mean stage latency.
    pub mean: Duration,
    /// Number of recorded observations.
    pub count: u64,
}

/// Point-in-time view of the server's health and throughput.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Time since the server started.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused: failed validation at submit (closed, wrong
    /// feature count, unrepresentable feature), `try_submit`
    /// backpressure, or — rarely — answered with an error because a
    /// hot-swap changed the feature count while they were queued (those
    /// also appear in `submitted`).
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Completed requests per wall-clock second since start.
    pub throughput_rps: f64,
    /// Requests currently waiting in the submission queue.
    pub queue_depth: usize,
    /// Worker wakes that processed at least one request.
    pub batches: u64,
    /// Mean coalesced batch size.
    pub mean_batch_size: f64,
    /// Largest coalesced batch.
    pub max_batch_size: u64,
    /// Circuit simulations performed (= encoding-cache misses that were
    /// actually simulated).
    pub simulations: u64,
    /// Requests shed by admission control or a missed deadline (each
    /// received an explicit `Shed` / `DeadlineExceeded` error reply).
    pub requests_shed: u64,
    /// Worker restarts after a caught batch panic (the in-flight batch
    /// was error-replied, never dropped).
    pub workers_restarted: u64,
    /// Faults the armed chaos plan injected into this server.
    pub faults_injected: u64,
    /// Encoding-cache counters.
    pub cache: CacheStats,
    /// Fraction of lookups served from the encoding cache.
    pub cache_hit_rate: f64,
    /// Request latency percentiles.
    pub latency: LatencySnapshot,
    /// Per-stage latency breakdown, in pipeline order: `queue` (first
    /// request of a batch, enqueue to batch start), `coalesce` (batch
    /// top-up wait), `encode` (cache-miss simulations per batch),
    /// `kernel` (one kernel block per batch), `reply` (answer fan-out
    /// per batch).
    pub stages: Vec<StageLatency>,
    /// Model version serving new batches.
    pub model_version: u64,
    /// Encoding epoch (bumps when a deploy changes ansatz/truncation).
    pub encoding_epoch: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.2?}  model v{} (epoch {})",
            self.uptime, self.model_version, self.encoding_epoch
        )?;
        writeln!(
            f,
            "requests: {} completed / {} submitted ({} rejected), {:.1} req/s, queue depth {}",
            self.completed, self.submitted, self.rejected, self.throughput_rps, self.queue_depth
        )?;
        writeln!(
            f,
            "batching: {} batches, mean size {:.2}, max size {}",
            self.batches, self.mean_batch_size, self.max_batch_size
        )?;
        writeln!(
            f,
            "robustness: {} shed, {} worker restarts, {} injected faults",
            self.requests_shed, self.workers_restarted, self.faults_injected
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit rate ({} hits / {} misses), {} entries, {:.1} KiB, {} evictions; {} simulations",
            100.0 * self.cache_hit_rate,
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            self.cache.bytes as f64 / 1024.0,
            self.cache.evictions,
            self.simulations
        )?;
        writeln!(
            f,
            "latency: p50 {:.2?}, p95 {:.2?}, p99 {:.2?}, max {:.2?}, mean {:.2?}",
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.max,
            self.latency.mean
        )?;
        write!(f, "stages (p50/p99):")?;
        for s in &self.stages {
            write!(f, " {} {:.2?}/{:.2?}", s.stage, s.p50, s.p99)?;
        }
        Ok(())
    }
}

/// Pipeline stages with a dedicated latency histogram; the discriminant
/// indexes `Metrics::stages`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// First request of a batch: enqueue to batch start.
    Queue = 0,
    /// Batch top-up wait in the worker loop.
    Coalesce = 1,
    /// Cache-miss simulations for one batch.
    Encode = 2,
    /// The batch's single kernel block.
    Kernel = 3,
    /// Answer fan-out for one batch.
    Reply = 4,
}

/// Shared mutable telemetry, updated by submitters and workers. All
/// instruments are registered in the server's [`Obs`] under `serve.*`.
pub(crate) struct Metrics {
    started: Instant,
    pub(crate) submitted: Counter,
    pub(crate) rejected: Counter,
    pub(crate) completed: Counter,
    pub(crate) batches: Counter,
    pub(crate) batched_jobs: Counter,
    pub(crate) max_batch_size: Counter,
    pub(crate) simulations: Counter,
    pub(crate) requests_shed: Counter,
    pub(crate) workers_restarted: Counter,
    pub(crate) faults_injected: Counter,
    pub(crate) queue_depth: Gauge,
    latency: Histogram,
    /// Pipeline-stage histograms, in pipeline order with their wire
    /// names — the request-granularity breakdown behind the serving
    /// latency story.
    stages: [(&'static str, Histogram); 5],
}

impl Metrics {
    pub(crate) fn new(obs: &Obs) -> Self {
        Metrics {
            started: Instant::now(),
            submitted: obs.counter("serve.submitted"),
            rejected: obs.counter("serve.rejected"),
            completed: obs.counter("serve.completed"),
            batches: obs.counter("serve.batches"),
            batched_jobs: obs.counter("serve.batched_jobs"),
            max_batch_size: obs.counter("serve.max_batch_size"),
            simulations: obs.counter("serve.simulations"),
            requests_shed: obs.counter("serve.requests_shed"),
            workers_restarted: obs.counter("serve.workers_restarted"),
            faults_injected: obs.counter("serve.faults_injected"),
            queue_depth: obs.gauge("serve.queue_depth"),
            latency: obs.histogram("serve.latency_us"),
            stages: [
                ("queue", obs.histogram("serve.stage.queue_us")),
                ("coalesce", obs.histogram("serve.stage.coalesce_us")),
                ("encode", obs.histogram("serve.stage.encode_us")),
                ("kernel", obs.histogram("serve.stage.kernel_us")),
                ("reply", obs.histogram("serve.stage.reply_us")),
            ],
        }
    }

    /// Records one observation into a pipeline-stage histogram.
    pub(crate) fn record_stage(&self, stage: Stage, took: Duration) {
        self.stages[stage as usize]
            .1
            .record(u64::try_from(took.as_micros()).unwrap_or(u64::MAX));
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.inc();
        self.batched_jobs.add(size as u64);
        self.max_batch_size.record_max(size as u64);
    }

    pub(crate) fn record_latency(&self, latency: Duration) {
        self.latency
            .record(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    pub(crate) fn snapshot(
        &self,
        cache: CacheStats,
        model_version: u64,
        encoding_epoch: u64,
    ) -> MetricsSnapshot {
        let uptime = self.started.elapsed();
        let completed = self.completed.get();
        let batches = self.batches.get();
        let batched_jobs = self.batched_jobs.get();
        let hist = self.latency.snapshot();
        MetricsSnapshot {
            uptime,
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed,
            throughput_rps: completed as f64 / uptime.as_secs_f64().max(1e-9),
            queue_depth: usize::try_from(self.queue_depth.get().max(0)).unwrap_or(0),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_jobs as f64 / batches as f64
            },
            max_batch_size: self.max_batch_size.get(),
            simulations: self.simulations.get(),
            requests_shed: self.requests_shed.get(),
            workers_restarted: self.workers_restarted.get(),
            faults_injected: self.faults_injected.get(),
            cache,
            cache_hit_rate: cache.hit_rate(),
            latency: LatencySnapshot {
                p50: Duration::from_micros(hist.quantile(0.50)),
                p95: Duration::from_micros(hist.quantile(0.95)),
                p99: Duration::from_micros(hist.quantile(0.99)),
                max: Duration::from_micros(hist.max),
                mean: Duration::from_secs_f64(hist.mean / 1e6),
                count: hist.count,
                buckets: hist.buckets,
            },
            stages: self
                .stages
                .iter()
                .map(|(name, h)| {
                    let s = h.snapshot();
                    StageLatency {
                        stage: (*name).to_string(),
                        p50: Duration::from_micros(s.quantile(0.50)),
                        p99: Duration::from_micros(s.quantile(0.99)),
                        max: Duration::from_micros(s.max),
                        mean: Duration::from_secs_f64(s.mean / 1e6),
                        count: s.count,
                    }
                })
                .collect(),
            model_version,
            encoding_epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> Metrics {
        Metrics::new(&Obs::new())
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let m = metrics();
        for us in [50u64, 80, 120, 400, 900, 1500, 3000, 9000, 20_000, 70_000] {
            m.record_latency(Duration::from_micros(us));
        }
        let s = m.snapshot(CacheStats::default(), 1, 0).latency;
        assert!(s.p50 > Duration::ZERO);
        assert!(
            s.p50 <= s.p95 && s.p95 <= s.p99,
            "{:?} {:?} {:?}",
            s.p50,
            s.p95,
            s.p99
        );
        assert!(s.p99 <= s.max);
        assert_eq!(s.max, Duration::from_micros(70_000));
        assert!(s.mean > Duration::ZERO);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = metrics().snapshot(CacheStats::default(), 1, 0).latency;
        assert_eq!(s.p99, Duration::ZERO);
        assert_eq!(s.mean, Duration::ZERO);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn single_observation_hits_every_quantile() {
        let m = metrics();
        m.record_latency(Duration::from_micros(333));
        let s = m.snapshot(CacheStats::default(), 1, 0).latency;
        for q in [s.p50, s.p95, s.p99] {
            assert_eq!(q, Duration::from_micros(333));
        }
    }

    #[test]
    fn extreme_latencies_clamp_to_edge_buckets() {
        let m = metrics();
        m.record_latency(Duration::ZERO);
        m.record_latency(Duration::from_secs(100_000));
        let s = m.snapshot(CacheStats::default(), 1, 0).latency;
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets.first().copied(), Some(1));
        assert_eq!(s.p99, s.max);
    }

    #[test]
    fn snapshot_exposes_full_bucket_array() {
        let m = metrics();
        m.record_latency(Duration::from_micros(3)); // bucket 1: [2, 4)
        m.record_latency(Duration::from_micros(3));
        m.record_latency(Duration::from_micros(100)); // bucket 6: [64, 128)
        let s = m.snapshot(CacheStats::default(), 1, 0).latency;
        assert_eq!(s.buckets.len(), qk_obs::BUCKETS);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[6], 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn stage_histograms_resolve_in_pipeline_order() {
        let m = metrics();
        m.record_stage(Stage::Queue, Duration::from_micros(10));
        m.record_stage(Stage::Kernel, Duration::from_micros(700));
        m.record_stage(Stage::Kernel, Duration::from_micros(900));
        let s = m.snapshot(CacheStats::default(), 1, 0);
        let names: Vec<&str> = s.stages.iter().map(|x| x.stage.as_str()).collect();
        assert_eq!(names, ["queue", "coalesce", "encode", "kernel", "reply"]);
        assert_eq!(s.stages[0].count, 1);
        assert_eq!(s.stages[1].count, 0);
        assert_eq!(s.stages[3].count, 2);
        assert_eq!(s.stages[3].max, Duration::from_micros(900));
        assert!(s.stages[3].p50 <= s.stages[3].p99);
        assert!(format!("{s}").contains("stages (p50/p99)"));
    }

    #[test]
    fn snapshot_math() {
        let m = metrics();
        m.submitted.add(10);
        m.completed.add(8);
        m.record_batch(3);
        m.record_batch(5);
        m.record_latency(Duration::from_millis(2));
        let s = m.snapshot(CacheStats::default(), 2, 1);
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 8);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 4.0).abs() < 1e-12);
        assert_eq!(s.max_batch_size, 5);
        assert_eq!(s.model_version, 2);
        assert!(s.throughput_rps > 0.0);
        assert!(!format!("{s}").is_empty());
    }
}
