//! Serving telemetry: counters, a latency histogram, and snapshots.
//!
//! Latencies land in logarithmic (power-of-two microsecond) buckets, so
//! recording is lock-brief and constant-size while still resolving the
//! tail percentiles the serving story cares about; quantiles report a
//! bucket's upper edge (clamped to the true maximum), i.e. p99 is never
//! under-reported. Follows the `core::timing` convention of measuring
//! durations with monotonic instants and reporting `Duration`s.

use crate::cache::CacheStats;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const BUCKETS: usize = 40;

/// Fixed-size logarithmic latency histogram.
#[derive(Debug, Clone)]
pub(crate) struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: Duration,
    max: Duration,
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: Duration::ZERO,
            max: Duration::ZERO,
        }
    }

    fn bucket(latency: Duration) -> usize {
        let us = latency.as_micros().max(1) as u64;
        ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    pub(crate) fn record(&mut self, latency: Duration) {
        self.counts[Self::bucket(latency)] += 1;
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Upper edge of the bucket holding the q-quantile observation,
    /// clamped to the observed maximum. Zero when empty.
    pub(crate) fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Duration::from_micros(1u64 << (i + 1).min(63)).min(self.max);
            }
        }
        self.max
    }

    fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.sum / self.count as u32
        }
    }
}

/// Latency percentiles for one snapshot.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencySnapshot {
    /// Median request latency (enqueue to reply).
    pub p50: Duration,
    /// 95th percentile latency.
    pub p95: Duration,
    /// 99th percentile latency.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
    /// Mean latency.
    pub mean: Duration,
}

/// Point-in-time view of the server's health and throughput.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Time since the server started.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused: failed validation at submit (closed, wrong
    /// feature count, unrepresentable feature), `try_submit`
    /// backpressure, or — rarely — answered with an error because a
    /// hot-swap changed the feature count while they were queued (those
    /// also appear in `submitted`).
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Completed requests per wall-clock second since start.
    pub throughput_rps: f64,
    /// Requests currently waiting in the submission queue.
    pub queue_depth: usize,
    /// Worker wakes that processed at least one request.
    pub batches: u64,
    /// Mean coalesced batch size.
    pub mean_batch_size: f64,
    /// Largest coalesced batch.
    pub max_batch_size: u64,
    /// Circuit simulations performed (= encoding-cache misses that were
    /// actually simulated).
    pub simulations: u64,
    /// Encoding-cache counters.
    pub cache: CacheStats,
    /// Fraction of lookups served from the encoding cache.
    pub cache_hit_rate: f64,
    /// Request latency percentiles.
    pub latency: LatencySnapshot,
    /// Model version serving new batches.
    pub model_version: u64,
    /// Encoding epoch (bumps when a deploy changes ansatz/truncation).
    pub encoding_epoch: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.2?}  model v{} (epoch {})",
            self.uptime, self.model_version, self.encoding_epoch
        )?;
        writeln!(
            f,
            "requests: {} completed / {} submitted ({} rejected), {:.1} req/s, queue depth {}",
            self.completed, self.submitted, self.rejected, self.throughput_rps, self.queue_depth
        )?;
        writeln!(
            f,
            "batching: {} batches, mean size {:.2}, max size {}",
            self.batches, self.mean_batch_size, self.max_batch_size
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit rate ({} hits / {} misses), {} entries, {:.1} KiB, {} evictions; {} simulations",
            100.0 * self.cache_hit_rate,
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            self.cache.bytes as f64 / 1024.0,
            self.cache.evictions,
            self.simulations
        )?;
        write!(
            f,
            "latency: p50 {:.2?}, p95 {:.2?}, p99 {:.2?}, max {:.2?}, mean {:.2?}",
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.max,
            self.latency.mean
        )
    }
}

/// Shared mutable telemetry, updated by submitters and workers.
pub(crate) struct Metrics {
    started: Instant,
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    pub(crate) max_batch_size: AtomicU64,
    pub(crate) simulations: AtomicU64,
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) latency: Mutex<LatencyHistogram>,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            max_batch_size: AtomicU64::new(0),
            simulations: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            latency: Mutex::new(LatencyHistogram::new()),
        }
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch_size
            .fetch_max(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        cache: CacheStats,
        model_version: u64,
        encoding_epoch: u64,
    ) -> MetricsSnapshot {
        let uptime = self.started.elapsed();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_jobs = self.batched_jobs.load(Ordering::Relaxed);
        let latency = self.latency.lock();
        MetricsSnapshot {
            uptime,
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            throughput_rps: completed as f64 / uptime.as_secs_f64().max(1e-9),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_jobs as f64 / batches as f64
            },
            max_batch_size: self.max_batch_size.load(Ordering::Relaxed),
            simulations: self.simulations.load(Ordering::Relaxed),
            cache,
            cache_hit_rate: cache.hit_rate(),
            latency: LatencySnapshot {
                p50: latency.quantile(0.50),
                p95: latency.quantile(0.95),
                p99: latency.quantile(0.99),
                max: latency.max,
                mean: latency.mean(),
            },
            model_version,
            encoding_epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for us in [50u64, 80, 120, 400, 900, 1500, 3000, 9000, 20_000, 70_000] {
            h.record(Duration::from_micros(us));
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 > Duration::ZERO);
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        assert!(p99 <= h.max);
        assert_eq!(h.max, Duration::from_micros(70_000));
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn single_observation_hits_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(333));
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(h.quantile(q), Duration::from_micros(333));
        }
    }

    #[test]
    fn extreme_latencies_clamp_to_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.count, 2);
        assert_eq!(h.quantile(1.0), h.max);
    }

    #[test]
    fn snapshot_math() {
        let m = Metrics::new();
        m.submitted.store(10, Ordering::Relaxed);
        m.completed.store(8, Ordering::Relaxed);
        m.record_batch(3);
        m.record_batch(5);
        m.latency.lock().record(Duration::from_millis(2));
        let s = m.snapshot(CacheStats::default(), 2, 1);
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 8);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 4.0).abs() < 1e-12);
        assert_eq!(s.max_batch_size, 5);
        assert_eq!(s.model_version, 2);
        assert!(s.throughput_rps > 0.0);
        assert!(!format!("{s}").is_empty());
    }
}
