//! The serving loop: bounded submission queue, micro-batching workers.
//!
//! ## Architecture
//!
//! ```text
//! ServeHandle::submit ──► bounded channel (backpressure) ──► worker pool
//!                                                             │  coalesce ≤ max_batch
//!                                                             │  (wait ≤ max_wait)
//!                                                             ▼
//!                        reply channel ◄── predict_from_states_with(unique states)
//!                                              ▲
//!                 encoding cache (hit: skip simulation entirely)
//! ```
//!
//! Each worker blocks on the shared MPMC queue, then tops its batch up
//! with whatever arrives within `max_wait`. The batch is deduplicated by
//! quantized cache key, missing encodings are simulated once, and the
//! whole batch is answered from one kernel block — so `k` duplicates of
//! a point cost one simulation and one kernel row, not `k` of each.
//!
//! ## Shutdown protocol
//!
//! `shutdown` must answer every accepted request while racing against
//! concurrent submitters. The ordering argument: submitters increment
//! `submitting` *before* checking the stop flag, and `shutdown` sets the
//! flag *before* waiting for `submitting` to reach zero — so every
//! successful enqueue strictly precedes the `Shutdown` tokens in the
//! FIFO queue. A worker that pops a token therefore knows every accepted
//! request has already been popped (by some worker), and can exit
//! immediately without draining.

use crate::cache::{CacheKey, EncodingCache, Quantizer};
use crate::config::ServeConfig;
use crate::metrics::{Metrics, MetricsSnapshot, Stage};
use crate::registry::{DeploySummary, ModelRegistry, ModelVersion};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use qk_chaos::{sites, Fault};
use qk_core::{ModelDecodeError, Prediction, QuantumKernelModel};
use qk_mps::{Mps, ZipperWorkspace};
use qk_obs::{Journal, Obs, TraceLane, TracePhase};
use qk_tensor::backend::CpuBackend;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The server has shut down (or did so before answering).
    Closed,
    /// The submission queue is full (`try_submit` only).
    QueueFull,
    /// The request's feature count does not match the serving model.
    FeatureCount {
        /// Features the serving model expects.
        expected: usize,
        /// Features the request carried.
        got: usize,
    },
    /// A feature is NaN, infinite, or too large for the cache-key
    /// quantization grid. Such coordinates would collapse onto
    /// legitimate grid points (NaN casts to 0; infinities and huge
    /// values saturate at the i64 grid edge) and poison the encoding
    /// cache — or, with the cache off, the in-batch deduplication.
    InvalidFeature {
        /// Index of the offending coordinate.
        index: usize,
    },
    /// The request sat in the queue past the configured
    /// [`crate::ServeConfig::deadline`] and was shed unprocessed.
    DeadlineExceeded,
    /// Admission control refused the request: the queue already held
    /// [`crate::ServeConfig::shed_queue_depth`] requests.
    Shed,
    /// The worker processing this request's batch panicked; the batch
    /// was error-replied and the worker restarted. Retrying is safe —
    /// the request was never partially served.
    WorkerPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::QueueFull => write!(f, "submission queue is full"),
            ServeError::FeatureCount { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            ServeError::InvalidFeature { index } => {
                write!(
                    f,
                    "feature {index} is not representable (NaN, infinite, or huge)"
                )
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::Shed => write!(f, "request shed by admission control"),
            ServeError::WorkerPanicked => {
                write!(f, "worker panicked while processing this request's batch")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A served classification with its provenance.
#[derive(Debug, Clone, Copy)]
pub struct ServedPrediction {
    /// The underlying prediction. `timing.simulation` is the circuit
    /// simulation this request's batch actually paid for its point
    /// (zero on a cache hit); `timing.inner_products` is the request's
    /// share of its batch's kernel-block time.
    pub prediction: Prediction,
    /// Model version that served this request.
    pub model_version: u64,
    /// `true` when the encoding came from the cache.
    pub cache_hit: bool,
    /// Size of the coalesced batch this request rode in.
    pub batch_size: usize,
    /// Enqueue-to-reply latency.
    pub latency: Duration,
}

/// A ticket for an accepted request; redeem with
/// [`PendingPrediction::wait`].
pub struct PendingPrediction {
    rx: Receiver<Result<ServedPrediction, ServeError>>,
}

impl PendingPrediction {
    /// Blocks until the request is answered.
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)?
    }
}

struct Job {
    features: Vec<f64>,
    reply: Sender<Result<ServedPrediction, ServeError>>,
    enqueued: Instant,
}

enum Msg {
    Request(Job),
    Shutdown,
}

struct ServerCore {
    registry: ModelRegistry,
    cache: Mutex<EncodingCache>,
    quantizer: Quantizer,
    metrics: Metrics,
    obs: Obs,
    journal: Option<Journal>,
    stop: AtomicBool,
    submitting: AtomicUsize,
    config: ServeConfig,
}

impl ServerCore {
    fn snapshot(&self) -> MetricsSnapshot {
        let current = self.registry.current();
        self.metrics.snapshot(
            self.cache.lock().stats(),
            current.version,
            current.encoding_epoch,
        )
    }
}

/// A clonable client endpoint for submitting requests and reading
/// metrics. Handles stay valid across hot-swaps; after shutdown every
/// submission returns [`ServeError::Closed`].
pub struct ServeHandle {
    core: Arc<ServerCore>,
    tx: Sender<Msg>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> Self {
        ServeHandle {
            core: Arc::clone(&self.core),
            tx: self.tx.clone(),
        }
    }
}

impl ServeHandle {
    fn make_job(&self, features: Vec<f64>) -> Result<(Msg, PendingPrediction), ServeError> {
        let expected = self.core.registry.current().model.num_features();
        if features.len() != expected {
            self.core.metrics.rejected.inc();
            return Err(ServeError::FeatureCount {
                expected,
                got: features.len(),
            });
        }
        // The quantization grid covers |x * scale| < 2^63; anything
        // outside (or NaN) would saturate onto a shared key.
        let scale = self.core.config.quantization_scale;
        if let Some(index) = features
            .iter()
            .position(|x| !x.is_finite() || (x * scale).abs() >= 9.0e18)
        {
            self.core.metrics.rejected.inc();
            return Err(ServeError::InvalidFeature { index });
        }
        let (reply, rx) = channel::bounded(1);
        Ok((
            Msg::Request(Job {
                features,
                reply,
                enqueued: Instant::now(),
            }),
            PendingPrediction { rx },
        ))
    }

    fn accepted(&self) -> PendingAccounting<'_> {
        // Increment-before-flag-check: see the shutdown protocol note in
        // the module docs.
        self.core.submitting.fetch_add(1, Ordering::SeqCst);
        PendingAccounting { core: &self.core }
    }

    /// Admission control: `true` when the queue is already at the
    /// configured shed depth and this submission must be refused with an
    /// explicit [`ServeError::Shed`] rather than queued (or blocked on).
    fn shed_now(&self) -> bool {
        self.core
            .config
            .shed_queue_depth
            .is_some_and(|limit| self.core.metrics.queue_depth.get() >= limit as i64)
    }

    /// Submits a request, blocking while the queue is full
    /// (backpressure).
    pub fn submit(&self, features: Vec<f64>) -> Result<PendingPrediction, ServeError> {
        let (msg, pending) = self.make_job(features)?;
        let guard = self.accepted();
        if self.core.stop.load(Ordering::SeqCst) {
            drop(guard);
            self.core.metrics.rejected.inc();
            return Err(ServeError::Closed);
        }
        if self.shed_now() {
            drop(guard);
            self.core.metrics.rejected.inc();
            self.core.metrics.requests_shed.inc();
            return Err(ServeError::Shed);
        }
        self.core.metrics.queue_depth.inc();
        let sent = self.tx.send(msg);
        drop(guard);
        match sent {
            Ok(()) => {
                self.core.metrics.submitted.inc();
                Ok(pending)
            }
            Err(_) => {
                self.core.metrics.queue_depth.dec();
                self.core.metrics.rejected.inc();
                Err(ServeError::Closed)
            }
        }
    }

    /// Non-blocking submit: fails fast with [`ServeError::QueueFull`]
    /// instead of exerting backpressure.
    pub fn try_submit(&self, features: Vec<f64>) -> Result<PendingPrediction, ServeError> {
        let (msg, pending) = self.make_job(features)?;
        let guard = self.accepted();
        if self.core.stop.load(Ordering::SeqCst) {
            drop(guard);
            self.core.metrics.rejected.inc();
            return Err(ServeError::Closed);
        }
        if self.shed_now() {
            drop(guard);
            self.core.metrics.rejected.inc();
            self.core.metrics.requests_shed.inc();
            return Err(ServeError::Shed);
        }
        self.core.metrics.queue_depth.inc();
        let sent = self.tx.try_send(msg);
        drop(guard);
        match sent {
            Ok(()) => {
                self.core.metrics.submitted.inc();
                Ok(pending)
            }
            Err(e) => {
                self.core.metrics.queue_depth.dec();
                self.core.metrics.rejected.inc();
                Err(match e {
                    TrySendError::Full(_) => ServeError::QueueFull,
                    TrySendError::Disconnected(_) => ServeError::Closed,
                })
            }
        }
    }

    /// Current metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }
}

/// RAII decrement of the `submitting` gate.
struct PendingAccounting<'a> {
    core: &'a ServerCore,
}

impl Drop for PendingAccounting<'_> {
    fn drop(&mut self) {
        self.core.submitting.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running inference service over a [`QuantumKernelModel`].
pub struct KernelServer {
    core: Arc<ServerCore>,
    tx: Sender<Msg>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl KernelServer {
    /// Starts the worker pool serving `model` as version 1, with its
    /// own fresh observability context.
    ///
    /// Panics if a worker thread cannot be spawned; use
    /// [`KernelServer::try_start`] to handle that without leaking
    /// threads.
    pub fn start(model: QuantumKernelModel, config: &ServeConfig) -> Self {
        Self::try_start(model, config).expect("spawn worker")
    }

    /// Starts the worker pool, registering all `serve.*` instruments
    /// and spans into a caller-provided [`Obs`] (so a pipeline can
    /// combine gram, SVM and serving telemetry in one report).
    ///
    /// Panics if a worker thread cannot be spawned; use
    /// [`KernelServer::try_start_with_obs`] to handle that without
    /// leaking threads.
    pub fn start_with_obs(model: QuantumKernelModel, config: &ServeConfig, obs: Obs) -> Self {
        Self::try_start_with_obs(model, config, obs).expect("spawn worker")
    }

    /// Fallible [`KernelServer::start`]: a worker-spawn failure tears
    /// down any already-started workers and returns the OS error
    /// instead of panicking with threads leaked.
    pub fn try_start(model: QuantumKernelModel, config: &ServeConfig) -> std::io::Result<Self> {
        Self::try_start_with_obs(model, config, Obs::new())
    }

    /// Fallible [`KernelServer::start_with_obs`]: see
    /// [`KernelServer::try_start`].
    pub fn try_start_with_obs(
        model: QuantumKernelModel,
        config: &ServeConfig,
        obs: Obs,
    ) -> std::io::Result<Self> {
        let config = config.normalized();
        let worker_count = config.workers;
        // Journal export is best-effort: an unwritable obs dir must not
        // take the server down.
        let journal = config.obs_dir.as_ref().and_then(|dir| {
            match Journal::open(&dir.join("serve_journal.jsonl")) {
                Ok(j) => Some(j),
                Err(e) => {
                    eprintln!("qk-serve: cannot open event journal: {e}");
                    None
                }
            }
        });
        if let Some(j) = &journal {
            j.event("server_start")
                .field_u64("workers", worker_count as u64)
                .field_u64("max_batch", config.max_batch as u64)
                .field_u64("queue_capacity", config.queue_capacity as u64)
                .field_u64("cache_capacity", config.cache_capacity as u64)
                .log();
        }
        let (tx, rx) = channel::bounded::<Msg>(config.queue_capacity);
        let core = Arc::new(ServerCore {
            registry: ModelRegistry::new(model),
            cache: Mutex::new(EncodingCache::new(
                config.cache_capacity,
                config.cache_max_bytes,
            )),
            quantizer: Quantizer::new(config.quantization_scale),
            metrics: Metrics::new(&obs),
            obs,
            journal,
            stop: AtomicBool::new(false),
            submitting: AtomicUsize::new(0),
            config,
        });
        let mut workers = Vec::with_capacity(worker_count);
        for w in 0..worker_count {
            let worker_core = Arc::clone(&core);
            let worker_rx = rx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("qk-serve-{w}"))
                .spawn(move || worker_loop(&worker_core, &worker_rx, w as u32));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Tear down the workers that did start so a partial
                    // pool never outlives the constructor.
                    let mut partial = KernelServer { core, tx, workers };
                    partial.shutdown_inner();
                    return Err(e);
                }
            }
        }
        Ok(KernelServer { core, tx, workers })
    }

    /// A new client endpoint.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            core: Arc::clone(&self.core),
            tx: self.tx.clone(),
        }
    }

    /// Hot-swaps the serving model: new batches pick up the new version
    /// immediately, in-flight batches drain on the old one. When the
    /// deploy changes the encoding parameters the cache is flushed
    /// (stale epochs could never be served, but their memory is freed
    /// eagerly).
    pub fn deploy(&self, model: QuantumKernelModel) -> DeploySummary {
        // The cache lock is held *across* the registry swap: no worker
        // can insert between the swap and the epoch retirement, so the
        // flush never discards valid new-epoch entries (a worker that
        // snapshots the new version inserts only after this lock is
        // released), and stragglers on the old version are rejected by
        // the retired-epoch floor. Workers never hold the cache lock
        // while taking a registry lock, so the ordering cannot deadlock.
        // Journal events are logged after the cache lock is released —
        // the journal's own locks never nest under it.
        let summary = {
            let mut cache = self.core.cache.lock();
            let summary = self.core.registry.deploy(model);
            if summary.encoding_changed {
                cache.retire_epochs_below(summary.encoding_epoch);
            }
            summary
        };
        if let Some(j) = &self.core.journal {
            j.event("deploy")
                .field_u64("version", summary.version)
                .field_bool("encoding_changed", summary.encoding_changed)
                .log();
            if summary.encoding_changed {
                j.event("epoch_flush")
                    .field_u64("epoch", summary.encoding_epoch)
                    .log();
            }
        }
        summary
    }

    /// Deploys a serialized model artifact, rejecting corrupt input
    /// without disturbing the serving version.
    pub fn deploy_bytes(&self, bytes: &[u8]) -> Result<DeploySummary, ModelDecodeError> {
        Ok(self.deploy(QuantumKernelModel::try_from_bytes(bytes)?))
    }

    /// Current metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }

    /// The server's observability context: every `serve.*` instrument
    /// and worker span reports into it.
    pub fn obs(&self) -> Obs {
        self.core.obs.clone()
    }

    /// Graceful shutdown: every request accepted before (or racing with)
    /// the call is answered, then workers exit. Returns the final
    /// metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.core.snapshot()
    }

    fn shutdown_inner(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.core.stop.store(true, Ordering::SeqCst);
        // Wait out submitters that passed the flag check: once
        // `submitting` reads zero, every accepted request is in the
        // queue ahead of the tokens below.
        while self.core.submitting.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        for _ in 0..self.workers.len() {
            // Err means every worker already exited; nothing to wake.
            let _ = self.tx.send(Msg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(j) = &self.core.journal {
            j.event("server_shutdown")
                .field_u64("completed", self.core.metrics.completed.get())
                .field_u64("rejected", self.core.metrics.rejected.get())
                .log();
            let _ = j.flush();
        }
        if let Some(dir) = &self.core.config.obs_dir {
            let report = self.core.obs.report("qk-serve");
            if let Err(e) = report.write_json(&dir.join("obs_serve.json")) {
                eprintln!("qk-serve: cannot write obs report: {e}");
            }
        }
    }
}

impl Drop for KernelServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(core: &ServerCore, rx: &Receiver<Msg>, wid: u32) {
    let mut backend = CpuBackend::new();
    // Serving traces always use rank 0: the server is one process, and
    // the lane id is the worker index.
    let lane = core.config.trace.as_ref().map(|t| t.lane(0, wid));
    // One zipper workspace per worker for the server's lifetime: every
    // kernel row this worker serves reuses the same buffers, so the
    // steady-state inner-product path performs zero heap allocation.
    // (Both are rebuilt after a supervised batch panic — their internal
    // state is unreliable once an unwind tore through them.)
    let mut ws = ZipperWorkspace::new();
    let _worker_span = core.obs.span("serve_worker");
    loop {
        let first = match rx.recv() {
            Ok(Msg::Request(job)) => job,
            // Shutdown token or disconnect: the FIFO argument in the
            // module docs guarantees no accepted request remains.
            Ok(Msg::Shutdown) | Err(_) => return,
        };
        core.metrics.queue_depth.dec();
        // The queue-stall site models a slow consumer; it only honors
        // delays. A panic here would escape supervision and an I/O
        // error has no meaning between queue and batch, so both are
        // ignored rather than letting a plan typo kill the worker.
        if let Some(Fault::Stall(delay)) = core.config.chaos.check(sites::SERVE_QUEUE) {
            core.metrics.faults_injected.inc();
            std::thread::sleep(delay);
        }
        // Queue stage: how long the request that woke this worker sat
        // in the submission queue. (The trace event is back-dated by
        // the same measured wait so the timeline shows the queueing,
        // not the instant of the wake.)
        let queue_wait = first.enqueued.elapsed();
        core.metrics.record_stage(Stage::Queue, queue_wait);
        if let Some(l) = &lane {
            let now = l.stamp();
            let wait_us = u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX);
            l.record_since(now.saturating_sub(wait_us), TracePhase::Queue, 1, 0);
        }
        let coalesce_t0 = lane.as_ref().map(|l| l.stamp());
        let coalesce_start = Instant::now();
        let mut batch = vec![first];
        let deadline = Instant::now() + core.config.max_wait;
        let mut shutting_down = false;
        while batch.len() < core.config.max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let next = if remaining.is_zero() {
                match rx.try_recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                }
            } else {
                match rx.recv_timeout(remaining) {
                    Ok(msg) => msg,
                    Err(_) => break,
                }
            };
            match next {
                Msg::Request(job) => {
                    core.metrics.queue_depth.dec();
                    batch.push(job);
                }
                Msg::Shutdown => {
                    shutting_down = true;
                    break;
                }
            }
        }
        core.metrics
            .record_stage(Stage::Coalesce, coalesce_start.elapsed());
        if let (Some(l), Some(t0)) = (&lane, coalesce_t0) {
            l.record_since(t0, TracePhase::Coalesce, batch.len() as i64, 0);
        }
        // Supervised batch execution: a panic anywhere in the batch
        // (model bug, poisoned state, injected fault) error-replies
        // every request still awaiting an answer — never hangs a
        // client — and restarts this worker in place with fresh
        // backend/workspace state.
        let supervised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_batch(core, &backend, &mut ws, &mut batch, lane.as_ref());
        }));
        if supervised.is_err() {
            for job in batch.drain(..) {
                core.metrics.rejected.inc();
                let _ = job.reply.send(Err(ServeError::WorkerPanicked));
            }
            backend = CpuBackend::new();
            ws = ZipperWorkspace::new();
            core.metrics.workers_restarted.inc();
            if let Some(j) = &core.journal {
                j.event("worker_restarted").log();
            }
        }
        if shutting_down {
            return;
        }
    }
}

/// One encoding shared by every job in the batch that quantizes to it.
struct UniquePoint {
    key: CacheKey,
    /// Index into the batch of the first job with this key (its exact
    /// features are the ones simulated on a miss).
    exemplar: usize,
    state: Option<Arc<Mps>>,
    cache_hit: bool,
    simulation: Duration,
}

fn process_batch(
    core: &ServerCore,
    backend: &CpuBackend,
    ws: &mut ZipperWorkspace,
    batch: &mut Vec<Job>,
    lane: Option<&TraceLane>,
) {
    let _batch_span = core.obs.span("batch");
    core.metrics.record_batch(batch.len());
    // Chaos: a batch-site panic unwinds into the worker supervisor
    // (every job left in `batch` gets an explicit error reply); a stall
    // models a slow simulation. I/O faults have no meaning here.
    match core.config.chaos.check(sites::SERVE_BATCH) {
        Some(Fault::Panic) => {
            core.metrics.faults_injected.inc();
            panic!("chaos: injected batch panic at {}", sites::SERVE_BATCH);
        }
        Some(Fault::Stall(delay)) => {
            core.metrics.faults_injected.inc();
            std::thread::sleep(delay);
        }
        Some(Fault::Io) | None => {}
    }
    // One model snapshot per batch: a concurrent deploy affects later
    // batches, never a partially processed one.
    let current: Arc<ModelVersion> = core.registry.current();
    let model = &current.model;
    let expected = model.num_features();

    // Answer (rare) stale-shape jobs that validated against a different
    // version than the one now serving, and shed jobs that already sat
    // in the queue past their deadline — a late answer is worth less
    // than an explicit, immediate error.
    batch.retain(|job| {
        if job.features.len() != expected {
            core.metrics.rejected.inc();
            let _ = job.reply.send(Err(ServeError::FeatureCount {
                expected,
                got: job.features.len(),
            }));
            return false;
        }
        if core
            .config
            .deadline
            .is_some_and(|limit| job.enqueued.elapsed() > limit)
        {
            core.metrics.rejected.inc();
            core.metrics.requests_shed.inc();
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
            return false;
        }
        true
    });
    let jobs: &[Job] = batch;
    if jobs.is_empty() {
        return;
    }

    // Coalesce duplicates: one UniquePoint per distinct quantized key.
    let cache_enabled = core.config.cache_capacity > 0;
    let mut unique: Vec<UniquePoint> = Vec::with_capacity(jobs.len());
    let mut slot_of_key: HashMap<CacheKey, usize> = HashMap::with_capacity(jobs.len());
    let mut job_slots = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        let key = core.quantizer.key(current.encoding_epoch, &job.features);
        let slot = *slot_of_key.entry(key.clone()).or_insert_with(|| {
            unique.push(UniquePoint {
                key,
                exemplar: j,
                state: None,
                cache_hit: false,
                simulation: Duration::ZERO,
            });
            unique.len() - 1
        });
        job_slots.push(slot);
    }

    // Cache lookups under one short lock.
    if cache_enabled {
        let mut cache = core.cache.lock();
        for point in unique.iter_mut() {
            if let Some(state) = cache.get(&point.key) {
                point.state = Some(state);
                point.cache_hit = true;
            }
        }
    }

    // Simulate the misses (the expensive phase) without holding any
    // lock, then publish them.
    {
        let _simulate_span = core.obs.span("simulate");
        let misses = unique.iter().filter(|p| p.state.is_none()).count();
        let _encode_trace =
            lane.map(|l| l.span_args(TracePhase::Encode, misses as i64, unique.len() as i64));
        let encode_start = Instant::now();
        for point in unique.iter_mut().filter(|p| p.state.is_none()) {
            let t0 = Instant::now();
            let state = Arc::new(model.encode(&jobs[point.exemplar].features, backend));
            point.simulation = t0.elapsed();
            core.metrics.simulations.inc();
            point.state = Some(state);
        }
        core.metrics
            .record_stage(Stage::Encode, encode_start.elapsed());
    }
    if cache_enabled {
        let evicted = {
            let mut cache = core.cache.lock();
            let evictions_before = cache.stats().evictions;
            for point in unique.iter().filter(|p| !p.cache_hit) {
                cache.insert(
                    point.key.clone(),
                    Arc::clone(point.state.as_ref().expect("simulated above")),
                );
            }
            cache.stats().evictions - evictions_before
        };
        // Logged outside the cache lock: journal locks never nest
        // under it.
        if evicted > 0 {
            if let Some(j) = &core.journal {
                j.event("cache_evict").field_u64("evicted", evicted).log();
            }
        }
    } else {
        // Keep miss accounting meaningful with the cache disabled.
        let mut cache = core.cache.lock();
        for point in &unique {
            cache.get(&point.key);
        }
    }

    // One kernel block answers the whole batch.
    let states: Vec<&Mps> = unique
        .iter()
        .map(|p| p.state.as_deref().expect("simulated above"))
        .collect();
    let predictions = {
        let _kernel_span = core.obs.span("kernel_block");
        let _kernel_trace =
            lane.map(|l| l.span_args(TracePhase::Kernel, states.len() as i64, batch.len() as i64));
        let kernel_start = Instant::now();
        let predictions = model.predict_from_states_with(ws, &states, backend);
        core.metrics
            .record_stage(Stage::Kernel, kernel_start.elapsed());
        predictions
    };

    let _reply_span = core.obs.span("reply");
    let _reply_trace = lane.map(|l| l.span_args(TracePhase::Reply, batch.len() as i64, 0));
    let reply_start = Instant::now();
    let batch_size = batch.len();
    // Reply by popping from the back: a job leaves `batch` in the same
    // step it is answered, so if anything panics mid-loop the worker
    // supervisor error-replies exactly the still-unanswered jobs —
    // never a double reply into a ticket's one-slot channel.
    while let Some(job) = batch.pop() {
        let slot = job_slots[batch.len()];
        let point = &unique[slot];
        let mut prediction = predictions[slot];
        prediction.timing.simulation = point.simulation;
        let latency = job.enqueued.elapsed();
        core.metrics.record_latency(latency);
        core.metrics.completed.inc();
        // A client that dropped its ticket is not an error.
        let _ = job.reply.send(Ok(ServedPrediction {
            prediction,
            model_version: current.version,
            cache_hit: point.cache_hit,
            batch_size,
            latency,
        }));
    }
    core.metrics
        .record_stage(Stage::Reply, reply_start.elapsed());
}
