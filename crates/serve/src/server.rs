//! The serving loop: bounded submission queue, micro-batching workers.
//!
//! ## Architecture
//!
//! ```text
//! ServeHandle::submit ──► bounded channel (backpressure) ──► worker pool
//!                                                             │  coalesce ≤ max_batch
//!                                                             │  (wait ≤ max_wait)
//!                                                             ▼
//!                        reply channel ◄── predict_from_states_with(unique states)
//!                                              ▲
//!                 encoding cache (hit: skip simulation entirely)
//! ```
//!
//! Each worker blocks on the shared MPMC queue, then tops its batch up
//! with whatever arrives within `max_wait`. The batch is deduplicated by
//! quantized cache key, missing encodings are simulated once, and the
//! whole batch is answered from one kernel block — so `k` duplicates of
//! a point cost one simulation and one kernel row, not `k` of each.
//!
//! ## Shutdown protocol
//!
//! `shutdown` must answer every accepted request while racing against
//! concurrent submitters. The ordering argument: submitters increment
//! `submitting` *before* checking the stop flag, and `shutdown` sets the
//! flag *before* waiting for `submitting` to reach zero — so every
//! successful enqueue strictly precedes the `Shutdown` tokens in the
//! FIFO queue. A worker that pops a token therefore knows every accepted
//! request has already been popped (by some worker), and can exit
//! immediately without draining.

use crate::cache::{CacheKey, EncodingCache, Quantizer};
use crate::config::ServeConfig;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::registry::{DeploySummary, ModelRegistry, ModelVersion};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use qk_core::{ModelDecodeError, Prediction, QuantumKernelModel};
use qk_mps::{Mps, ZipperWorkspace};
use qk_obs::{Journal, Obs};
use qk_tensor::backend::CpuBackend;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The server has shut down (or did so before answering).
    Closed,
    /// The submission queue is full (`try_submit` only).
    QueueFull,
    /// The request's feature count does not match the serving model.
    FeatureCount {
        /// Features the serving model expects.
        expected: usize,
        /// Features the request carried.
        got: usize,
    },
    /// A feature is NaN, infinite, or too large for the cache-key
    /// quantization grid. Such coordinates would collapse onto
    /// legitimate grid points (NaN casts to 0; infinities and huge
    /// values saturate at the i64 grid edge) and poison the encoding
    /// cache — or, with the cache off, the in-batch deduplication.
    InvalidFeature {
        /// Index of the offending coordinate.
        index: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::QueueFull => write!(f, "submission queue is full"),
            ServeError::FeatureCount { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            ServeError::InvalidFeature { index } => {
                write!(
                    f,
                    "feature {index} is not representable (NaN, infinite, or huge)"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A served classification with its provenance.
#[derive(Debug, Clone, Copy)]
pub struct ServedPrediction {
    /// The underlying prediction. `timing.simulation` is the circuit
    /// simulation this request's batch actually paid for its point
    /// (zero on a cache hit); `timing.inner_products` is the request's
    /// share of its batch's kernel-block time.
    pub prediction: Prediction,
    /// Model version that served this request.
    pub model_version: u64,
    /// `true` when the encoding came from the cache.
    pub cache_hit: bool,
    /// Size of the coalesced batch this request rode in.
    pub batch_size: usize,
    /// Enqueue-to-reply latency.
    pub latency: Duration,
}

/// A ticket for an accepted request; redeem with
/// [`PendingPrediction::wait`].
pub struct PendingPrediction {
    rx: Receiver<Result<ServedPrediction, ServeError>>,
}

impl PendingPrediction {
    /// Blocks until the request is answered.
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)?
    }
}

struct Job {
    features: Vec<f64>,
    reply: Sender<Result<ServedPrediction, ServeError>>,
    enqueued: Instant,
}

enum Msg {
    Request(Job),
    Shutdown,
}

struct ServerCore {
    registry: ModelRegistry,
    cache: Mutex<EncodingCache>,
    quantizer: Quantizer,
    metrics: Metrics,
    obs: Obs,
    journal: Option<Journal>,
    stop: AtomicBool,
    submitting: AtomicUsize,
    config: ServeConfig,
}

impl ServerCore {
    fn snapshot(&self) -> MetricsSnapshot {
        let current = self.registry.current();
        self.metrics.snapshot(
            self.cache.lock().stats(),
            current.version,
            current.encoding_epoch,
        )
    }
}

/// A clonable client endpoint for submitting requests and reading
/// metrics. Handles stay valid across hot-swaps; after shutdown every
/// submission returns [`ServeError::Closed`].
pub struct ServeHandle {
    core: Arc<ServerCore>,
    tx: Sender<Msg>,
}

impl Clone for ServeHandle {
    fn clone(&self) -> Self {
        ServeHandle {
            core: Arc::clone(&self.core),
            tx: self.tx.clone(),
        }
    }
}

impl ServeHandle {
    fn make_job(&self, features: Vec<f64>) -> Result<(Msg, PendingPrediction), ServeError> {
        let expected = self.core.registry.current().model.num_features();
        if features.len() != expected {
            self.core.metrics.rejected.inc();
            return Err(ServeError::FeatureCount {
                expected,
                got: features.len(),
            });
        }
        // The quantization grid covers |x * scale| < 2^63; anything
        // outside (or NaN) would saturate onto a shared key.
        let scale = self.core.config.quantization_scale;
        if let Some(index) = features
            .iter()
            .position(|x| !x.is_finite() || (x * scale).abs() >= 9.0e18)
        {
            self.core.metrics.rejected.inc();
            return Err(ServeError::InvalidFeature { index });
        }
        let (reply, rx) = channel::bounded(1);
        Ok((
            Msg::Request(Job {
                features,
                reply,
                enqueued: Instant::now(),
            }),
            PendingPrediction { rx },
        ))
    }

    fn accepted(&self) -> PendingAccounting<'_> {
        // Increment-before-flag-check: see the shutdown protocol note in
        // the module docs.
        self.core.submitting.fetch_add(1, Ordering::SeqCst);
        PendingAccounting { core: &self.core }
    }

    /// Submits a request, blocking while the queue is full
    /// (backpressure).
    pub fn submit(&self, features: Vec<f64>) -> Result<PendingPrediction, ServeError> {
        let (msg, pending) = self.make_job(features)?;
        let guard = self.accepted();
        if self.core.stop.load(Ordering::SeqCst) {
            drop(guard);
            self.core.metrics.rejected.inc();
            return Err(ServeError::Closed);
        }
        self.core.metrics.queue_depth.inc();
        let sent = self.tx.send(msg);
        drop(guard);
        match sent {
            Ok(()) => {
                self.core.metrics.submitted.inc();
                Ok(pending)
            }
            Err(_) => {
                self.core.metrics.queue_depth.dec();
                self.core.metrics.rejected.inc();
                Err(ServeError::Closed)
            }
        }
    }

    /// Non-blocking submit: fails fast with [`ServeError::QueueFull`]
    /// instead of exerting backpressure.
    pub fn try_submit(&self, features: Vec<f64>) -> Result<PendingPrediction, ServeError> {
        let (msg, pending) = self.make_job(features)?;
        let guard = self.accepted();
        if self.core.stop.load(Ordering::SeqCst) {
            drop(guard);
            self.core.metrics.rejected.inc();
            return Err(ServeError::Closed);
        }
        self.core.metrics.queue_depth.inc();
        let sent = self.tx.try_send(msg);
        drop(guard);
        match sent {
            Ok(()) => {
                self.core.metrics.submitted.inc();
                Ok(pending)
            }
            Err(e) => {
                self.core.metrics.queue_depth.dec();
                self.core.metrics.rejected.inc();
                Err(match e {
                    TrySendError::Full(_) => ServeError::QueueFull,
                    TrySendError::Disconnected(_) => ServeError::Closed,
                })
            }
        }
    }

    /// Current metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }
}

/// RAII decrement of the `submitting` gate.
struct PendingAccounting<'a> {
    core: &'a ServerCore,
}

impl Drop for PendingAccounting<'_> {
    fn drop(&mut self) {
        self.core.submitting.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running inference service over a [`QuantumKernelModel`].
pub struct KernelServer {
    core: Arc<ServerCore>,
    tx: Sender<Msg>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl KernelServer {
    /// Starts the worker pool serving `model` as version 1, with its
    /// own fresh observability context.
    pub fn start(model: QuantumKernelModel, config: &ServeConfig) -> Self {
        Self::start_with_obs(model, config, Obs::new())
    }

    /// Starts the worker pool, registering all `serve.*` instruments
    /// and spans into a caller-provided [`Obs`] (so a pipeline can
    /// combine gram, SVM and serving telemetry in one report).
    pub fn start_with_obs(model: QuantumKernelModel, config: &ServeConfig, obs: Obs) -> Self {
        let config = config.normalized();
        let worker_count = config.workers;
        // Journal export is best-effort: an unwritable obs dir must not
        // take the server down.
        let journal = config.obs_dir.as_ref().and_then(|dir| {
            match Journal::open(&dir.join("serve_journal.jsonl")) {
                Ok(j) => Some(j),
                Err(e) => {
                    eprintln!("qk-serve: cannot open event journal: {e}");
                    None
                }
            }
        });
        if let Some(j) = &journal {
            j.event("server_start")
                .field_u64("workers", worker_count as u64)
                .field_u64("max_batch", config.max_batch as u64)
                .field_u64("queue_capacity", config.queue_capacity as u64)
                .field_u64("cache_capacity", config.cache_capacity as u64)
                .log();
        }
        let (tx, rx) = channel::bounded::<Msg>(config.queue_capacity);
        let core = Arc::new(ServerCore {
            registry: ModelRegistry::new(model),
            cache: Mutex::new(EncodingCache::new(
                config.cache_capacity,
                config.cache_max_bytes,
            )),
            quantizer: Quantizer::new(config.quantization_scale),
            metrics: Metrics::new(&obs),
            obs,
            journal,
            stop: AtomicBool::new(false),
            submitting: AtomicUsize::new(0),
            config,
        });
        let workers = (0..worker_count)
            .map(|w| {
                let core = Arc::clone(&core);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("qk-serve-{w}"))
                    .spawn(move || worker_loop(&core, &rx))
                    .expect("spawn worker")
            })
            .collect();
        KernelServer { core, tx, workers }
    }

    /// A new client endpoint.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            core: Arc::clone(&self.core),
            tx: self.tx.clone(),
        }
    }

    /// Hot-swaps the serving model: new batches pick up the new version
    /// immediately, in-flight batches drain on the old one. When the
    /// deploy changes the encoding parameters the cache is flushed
    /// (stale epochs could never be served, but their memory is freed
    /// eagerly).
    pub fn deploy(&self, model: QuantumKernelModel) -> DeploySummary {
        // The cache lock is held *across* the registry swap: no worker
        // can insert between the swap and the epoch retirement, so the
        // flush never discards valid new-epoch entries (a worker that
        // snapshots the new version inserts only after this lock is
        // released), and stragglers on the old version are rejected by
        // the retired-epoch floor. Workers never hold the cache lock
        // while taking a registry lock, so the ordering cannot deadlock.
        // Journal events are logged after the cache lock is released —
        // the journal's own locks never nest under it.
        let summary = {
            let mut cache = self.core.cache.lock();
            let summary = self.core.registry.deploy(model);
            if summary.encoding_changed {
                cache.retire_epochs_below(summary.encoding_epoch);
            }
            summary
        };
        if let Some(j) = &self.core.journal {
            j.event("deploy")
                .field_u64("version", summary.version)
                .field_bool("encoding_changed", summary.encoding_changed)
                .log();
            if summary.encoding_changed {
                j.event("epoch_flush")
                    .field_u64("epoch", summary.encoding_epoch)
                    .log();
            }
        }
        summary
    }

    /// Deploys a serialized model artifact, rejecting corrupt input
    /// without disturbing the serving version.
    pub fn deploy_bytes(&self, bytes: &[u8]) -> Result<DeploySummary, ModelDecodeError> {
        Ok(self.deploy(QuantumKernelModel::try_from_bytes(bytes)?))
    }

    /// Current metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }

    /// The server's observability context: every `serve.*` instrument
    /// and worker span reports into it.
    pub fn obs(&self) -> Obs {
        self.core.obs.clone()
    }

    /// Graceful shutdown: every request accepted before (or racing with)
    /// the call is answered, then workers exit. Returns the final
    /// metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.core.snapshot()
    }

    fn shutdown_inner(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.core.stop.store(true, Ordering::SeqCst);
        // Wait out submitters that passed the flag check: once
        // `submitting` reads zero, every accepted request is in the
        // queue ahead of the tokens below.
        while self.core.submitting.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        for _ in 0..self.workers.len() {
            // Err means every worker already exited; nothing to wake.
            let _ = self.tx.send(Msg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(j) = &self.core.journal {
            j.event("server_shutdown")
                .field_u64("completed", self.core.metrics.completed.get())
                .field_u64("rejected", self.core.metrics.rejected.get())
                .log();
            let _ = j.flush();
        }
        if let Some(dir) = &self.core.config.obs_dir {
            let report = self.core.obs.report("qk-serve");
            if let Err(e) = report.write_json(&dir.join("obs_serve.json")) {
                eprintln!("qk-serve: cannot write obs report: {e}");
            }
        }
    }
}

impl Drop for KernelServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(core: &ServerCore, rx: &Receiver<Msg>) {
    let backend = CpuBackend::new();
    // One zipper workspace per worker for the server's lifetime: every
    // kernel row this worker serves reuses the same buffers, so the
    // steady-state inner-product path performs zero heap allocation.
    let mut ws = ZipperWorkspace::new();
    let _worker_span = core.obs.span("serve_worker");
    loop {
        let first = match rx.recv() {
            Ok(Msg::Request(job)) => job,
            // Shutdown token or disconnect: the FIFO argument in the
            // module docs guarantees no accepted request remains.
            Ok(Msg::Shutdown) | Err(_) => return,
        };
        core.metrics.queue_depth.dec();
        let mut batch = vec![first];
        let deadline = Instant::now() + core.config.max_wait;
        let mut shutting_down = false;
        while batch.len() < core.config.max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let next = if remaining.is_zero() {
                match rx.try_recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                }
            } else {
                match rx.recv_timeout(remaining) {
                    Ok(msg) => msg,
                    Err(_) => break,
                }
            };
            match next {
                Msg::Request(job) => {
                    core.metrics.queue_depth.dec();
                    batch.push(job);
                }
                Msg::Shutdown => {
                    shutting_down = true;
                    break;
                }
            }
        }
        process_batch(core, &backend, &mut ws, batch);
        if shutting_down {
            return;
        }
    }
}

/// One encoding shared by every job in the batch that quantizes to it.
struct UniquePoint {
    key: CacheKey,
    /// Index into the batch of the first job with this key (its exact
    /// features are the ones simulated on a miss).
    exemplar: usize,
    state: Option<Arc<Mps>>,
    cache_hit: bool,
    simulation: Duration,
}

fn process_batch(
    core: &ServerCore,
    backend: &CpuBackend,
    ws: &mut ZipperWorkspace,
    batch: Vec<Job>,
) {
    let _batch_span = core.obs.span("batch");
    core.metrics.record_batch(batch.len());
    // One model snapshot per batch: a concurrent deploy affects later
    // batches, never a partially processed one.
    let current: Arc<ModelVersion> = core.registry.current();
    let model = &current.model;
    let expected = model.num_features();

    // Answer (rare) stale-shape jobs that validated against a different
    // version than the one now serving.
    let mut jobs = Vec::with_capacity(batch.len());
    for job in batch {
        if job.features.len() != expected {
            let _ = job.reply.send(Err(ServeError::FeatureCount {
                expected,
                got: job.features.len(),
            }));
            core.metrics.rejected.inc();
        } else {
            jobs.push(job);
        }
    }
    if jobs.is_empty() {
        return;
    }

    // Coalesce duplicates: one UniquePoint per distinct quantized key.
    let cache_enabled = core.config.cache_capacity > 0;
    let mut unique: Vec<UniquePoint> = Vec::with_capacity(jobs.len());
    let mut slot_of_key: HashMap<CacheKey, usize> = HashMap::with_capacity(jobs.len());
    let mut job_slots = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        let key = core.quantizer.key(current.encoding_epoch, &job.features);
        let slot = *slot_of_key.entry(key.clone()).or_insert_with(|| {
            unique.push(UniquePoint {
                key,
                exemplar: j,
                state: None,
                cache_hit: false,
                simulation: Duration::ZERO,
            });
            unique.len() - 1
        });
        job_slots.push(slot);
    }

    // Cache lookups under one short lock.
    if cache_enabled {
        let mut cache = core.cache.lock();
        for point in unique.iter_mut() {
            if let Some(state) = cache.get(&point.key) {
                point.state = Some(state);
                point.cache_hit = true;
            }
        }
    }

    // Simulate the misses (the expensive phase) without holding any
    // lock, then publish them.
    {
        let _simulate_span = core.obs.span("simulate");
        for point in unique.iter_mut().filter(|p| p.state.is_none()) {
            let t0 = Instant::now();
            let state = Arc::new(model.encode(&jobs[point.exemplar].features, backend));
            point.simulation = t0.elapsed();
            core.metrics.simulations.inc();
            point.state = Some(state);
        }
    }
    if cache_enabled {
        let evicted = {
            let mut cache = core.cache.lock();
            let evictions_before = cache.stats().evictions;
            for point in unique.iter().filter(|p| !p.cache_hit) {
                cache.insert(
                    point.key.clone(),
                    Arc::clone(point.state.as_ref().expect("simulated above")),
                );
            }
            cache.stats().evictions - evictions_before
        };
        // Logged outside the cache lock: journal locks never nest
        // under it.
        if evicted > 0 {
            if let Some(j) = &core.journal {
                j.event("cache_evict").field_u64("evicted", evicted).log();
            }
        }
    } else {
        // Keep miss accounting meaningful with the cache disabled.
        let mut cache = core.cache.lock();
        for point in &unique {
            cache.get(&point.key);
        }
    }

    // One kernel block answers the whole batch.
    let states: Vec<&Mps> = unique
        .iter()
        .map(|p| p.state.as_deref().expect("simulated above"))
        .collect();
    let predictions = {
        let _kernel_span = core.obs.span("kernel_block");
        model.predict_from_states_with(ws, &states, backend)
    };

    let _reply_span = core.obs.span("reply");
    let batch_size = jobs.len();
    for (job, &slot) in jobs.into_iter().zip(&job_slots) {
        let point = &unique[slot];
        let mut prediction = predictions[slot];
        prediction.timing.simulation = point.simulation;
        let latency = job.enqueued.elapsed();
        core.metrics.record_latency(latency);
        core.metrics.completed.inc();
        // A client that dropped its ticket is not an error.
        let _ = job.reply.send(Ok(ServedPrediction {
            prediction,
            model_version: current.version,
            cache_hit: point.cache_hit,
            batch_size,
            latency,
        }));
    }
}
