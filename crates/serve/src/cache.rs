//! The MPS encoding cache: quantized feature keys over an intrusive LRU.
//!
//! Simulating a query point's circuit dominates inference cost (~2 s at
//! 165 qubits in the paper, against ~0.02 s for a full kernel row), so
//! the serving layer caches the *encoding* — the simulated [`Mps`] — and
//! re-runs only the cheap inner-product phase for repeated points.
//! Keys are feature vectors quantized to a grid
//! (`round(x * scale)` per coordinate): exact duplicates always hit, and
//! near-duplicates within half a grid step share one encoding. That is a
//! deliberate approximation — see DESIGN.md's serving section for the
//! trade-off — and the scale knob turns it off in the limit.
//!
//! Keys also carry the registry's *encoding epoch*: a hot-swap to a
//! model with a different ansatz or truncation bumps the epoch, so stale
//! encodings can never serve the new model.

use qk_mps::Mps;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: encoding epoch plus the quantized feature vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    epoch: u64,
    grid: Vec<i64>,
}

impl CacheKey {
    /// The encoding epoch this key was minted under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Maps feature vectors onto the cache-key grid.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    scale: f64,
}

impl Quantizer {
    /// A quantizer with the given grid scale (points per unit feature).
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "quantization scale must be positive");
        Quantizer { scale }
    }

    /// The cache key of a feature vector under the given encoding epoch.
    pub fn key(&self, epoch: u64, features: &[f64]) -> CacheKey {
        CacheKey {
            epoch,
            grid: features
                .iter()
                .map(|&x| (x * self.scale).round() as i64)
                .collect(),
        }
    }
}

/// Counters describing cache behaviour since server start.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CacheStats {
    /// Lookups that found a cached encoding.
    pub hits: u64,
    /// Lookups that missed (each miss costs one circuit simulation).
    pub misses: u64,
    /// Entries evicted to respect the capacity/byte budgets.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (MPS tensors plus key/bookkeeping).
    pub bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when no lookups ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Slot {
    key: CacheKey,
    /// `None` only while the slot sits on the free list: eviction drops
    /// the tensors immediately so the byte budget bounds real resident
    /// memory, not just live-entry accounting.
    state: Option<Arc<Mps>>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// An LRU cache of simulated encodings with entry and byte budgets.
///
/// Eviction is O(1) per entry via an intrusive doubly-linked recency
/// list threaded through a slot arena; lookups are a `HashMap` probe
/// plus a list splice.
pub struct EncodingCache {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (eviction end).
    tail: usize,
    capacity: usize,
    max_bytes: Option<usize>,
    bytes: usize,
    /// Keys minted under an epoch below this are dead (a deploy changed
    /// the encoding parameters) and must not be (re-)inserted.
    min_epoch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl EncodingCache {
    /// A cache bounded by `capacity` entries and optionally `max_bytes`
    /// resident bytes. `capacity` 0 disables the cache: every lookup
    /// misses and inserts are dropped.
    pub fn new(capacity: usize, max_bytes: Option<usize>) -> Self {
        EncodingCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            max_bytes,
            bytes: 0,
            min_epoch: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a cached encoding, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Mps>> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                Some(Arc::clone(
                    self.slots[idx].state.as_ref().expect("resident slot"),
                ))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly simulated encoding, evicting from the LRU end
    /// until the entry and byte budgets hold again. Entries that alone
    /// exceed the byte budget, and entries minted under a retired
    /// encoding epoch (a worker finishing an old-version batch after a
    /// deploy), are dropped instead — the byte budget is a hard cap and
    /// dead epochs never occupy it.
    pub fn insert(&mut self, key: CacheKey, state: Arc<Mps>) {
        if self.capacity == 0 || key.epoch < self.min_epoch {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Duplicate insert from a concurrent miss on another worker:
            // keep the resident entry, just refresh recency.
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        let entry_bytes = entry_bytes(&key, &state);
        if self.max_bytes.is_some_and(|b| entry_bytes > b) {
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    state: Some(state),
                    bytes: entry_bytes,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    state: Some(state),
                    bytes: entry_bytes,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.bytes += entry_bytes;
        self.insertions += 1;
        self.enforce_budgets();
    }

    fn enforce_budgets(&mut self) {
        // Oversized single entries are rejected in insert(), so this
        // loop always terminates with the budgets actually met.
        while self.map.len() > self.capacity || self.max_bytes.is_some_and(|b| self.bytes > b) {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            self.bytes -= self.slots[victim].bytes;
            // Drop the tensors now — a parked free slot must not keep
            // megabytes of MPS data alive past the byte budget.
            self.slots[victim].state = None;
            let key = self.slots[victim].key.clone();
            self.map.remove(&key);
            self.free.push(victim);
            self.evictions += 1;
        }
    }

    /// Drops every entry (the registry calls this on an encoding-epoch
    /// bump so dead-epoch states free their memory immediately).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }

    /// Flushes the cache and refuses all future inserts keyed under an
    /// epoch below `epoch` — closes the race where a worker finishing a
    /// batch on the old model version inserts after the deploy's flush.
    pub fn retire_epochs_below(&mut self, epoch: u64) {
        self.min_epoch = self.min_epoch.max(epoch);
        self.clear();
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

/// Resident size of one entry: the MPS tensors plus the key grid and a
/// fixed allowance for map/list bookkeeping.
fn entry_bytes(key: &CacheKey, state: &Mps) -> usize {
    state.memory_bytes() + key.grid.len() * std::mem::size_of::<i64>() + 64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(qubits: usize) -> Arc<Mps> {
        Arc::new(Mps::plus_state(qubits))
    }

    #[test]
    fn quantizer_merges_near_duplicates() {
        let q = Quantizer::new(1e3);
        let a = q.key(1, &[0.5, 1.0]);
        let near = q.key(1, &[0.5 + 2e-4, 1.0 - 2e-4]);
        let far = q.key(1, &[0.5 + 2e-3, 1.0]);
        assert_eq!(a, near, "within half a grid step");
        assert_ne!(a, far, "beyond a grid step");
        assert_ne!(a, q.key(2, &[0.5, 1.0]), "epochs must not collide");
    }

    #[test]
    fn hit_miss_and_recency() {
        let q = Quantizer::new(1e6);
        let mut cache = EncodingCache::new(2, None);
        let (ka, kb, kc) = (q.key(1, &[0.1]), q.key(1, &[0.2]), q.key(1, &[0.3]));
        assert!(cache.get(&ka).is_none());
        cache.insert(ka.clone(), state(3));
        cache.insert(kb.clone(), state(3));
        // Touch A so B becomes the LRU victim.
        assert!(cache.get(&ka).is_some());
        cache.insert(kc.clone(), state(3));
        assert!(cache.get(&kb).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&ka).is_some());
        assert!(cache.get(&kc).is_some());
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn byte_budget_evicts() {
        let q = Quantizer::new(1e6);
        let per_entry = entry_bytes(&q.key(1, &[0.0]), &state(4));
        let mut cache = EncodingCache::new(100, Some(per_entry * 2));
        for i in 0..5 {
            cache.insert(q.key(1, &[i as f64]), state(4));
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2, "byte budget holds two entries");
        assert!(s.bytes <= per_entry * 2);
        assert_eq!(s.evictions, 3);
    }

    #[test]
    fn oversized_entry_is_rejected_not_resident() {
        let q = Quantizer::new(1e6);
        let per_entry = entry_bytes(&q.key(1, &[0.0]), &state(4));
        let mut cache = EncodingCache::new(100, Some(per_entry - 1));
        cache.insert(q.key(1, &[0.0]), state(4));
        assert!(cache.is_empty(), "byte budget is a hard cap");
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn retired_epochs_cannot_reenter() {
        let q = Quantizer::new(1e6);
        let mut cache = EncodingCache::new(8, None);
        cache.insert(q.key(1, &[0.1]), state(3));
        cache.retire_epochs_below(2);
        assert!(cache.is_empty(), "retire flushes");
        // A straggler worker finishing an old-version batch.
        cache.insert(q.key(1, &[0.2]), state(3));
        assert!(cache.is_empty(), "dead epoch must not re-enter");
        cache.insert(q.key(2, &[0.2]), state(3));
        assert_eq!(cache.len(), 1, "current epoch still caches");
    }

    #[test]
    fn zero_capacity_disables() {
        let q = Quantizer::new(1e6);
        let mut cache = EncodingCache::new(0, None);
        cache.insert(q.key(1, &[0.1]), state(2));
        assert!(cache.is_empty());
        assert!(cache.get(&q.key(1, &[0.1])).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn duplicate_insert_keeps_single_entry() {
        let q = Quantizer::new(1e6);
        let mut cache = EncodingCache::new(4, None);
        let k = q.key(1, &[0.7]);
        cache.insert(k.clone(), state(3));
        let bytes = cache.stats().bytes;
        cache.insert(k.clone(), state(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().bytes, bytes, "no double accounting");
    }

    #[test]
    fn clear_resets_contents_but_not_counters() {
        let q = Quantizer::new(1e6);
        let mut cache = EncodingCache::new(4, None);
        cache.insert(q.key(1, &[0.1]), state(2));
        assert!(cache.get(&q.key(1, &[0.1])).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
        let s = cache.stats();
        assert_eq!(s.hits, 1, "history survives a flush");
    }

    #[test]
    fn eviction_drops_the_tensors_immediately() {
        let q = Quantizer::new(1e6);
        let mut cache = EncodingCache::new(1, None);
        let held = state(5);
        cache.insert(q.key(1, &[0.1]), Arc::clone(&held));
        assert_eq!(Arc::strong_count(&held), 2);
        // Inserting a second entry evicts the first; the parked free
        // slot must not keep the evicted state alive.
        cache.insert(q.key(1, &[0.2]), state(5));
        assert_eq!(
            Arc::strong_count(&held),
            1,
            "evicted slot still holds the Arc"
        );
    }

    #[test]
    fn eviction_slots_are_reused() {
        let q = Quantizer::new(1e6);
        let mut cache = EncodingCache::new(2, None);
        for i in 0..50 {
            cache.insert(q.key(1, &[i as f64]), state(2));
        }
        assert_eq!(cache.len(), 2);
        assert!(
            cache.slots.len() <= 3,
            "arena must recycle evicted slots, got {}",
            cache.slots.len()
        );
    }
}
