//! Serving configuration.

use qk_chaos::Chaos;
use qk_obs::Tracer;
use std::path::PathBuf;
use std::time::Duration;

/// Tuning knobs for a [`crate::KernelServer`].
///
/// The defaults target the paper's inference profile: simulation is
/// ~100x the cost of a kernel row, so the queue is sized to keep every
/// worker busy while duplicates coalesce, and the cache is large enough
/// to hold tens of thousands of d = 1 states (the paper stores 64,000
/// training states in under 1 GiB; query states are the same size).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads sharing the submission queue (min 1).
    pub workers: usize,
    /// Most requests coalesced into one worker wake (min 1).
    pub max_batch: usize,
    /// How long a worker tops up a partial batch before processing it.
    pub max_wait: Duration,
    /// Bound on queued requests; submitters block (backpressure) or get
    /// [`crate::ServeError::QueueFull`] from `try_submit` beyond it.
    pub queue_capacity: usize,
    /// Encoding-cache entry budget; 0 disables the cache entirely.
    pub cache_capacity: usize,
    /// Optional encoding-cache byte budget (entry sizes come from
    /// [`qk_mps::Mps::memory_bytes`]); `None` = entries-only bound.
    pub cache_max_bytes: Option<usize>,
    /// Feature quantization scale for cache keys: coordinates are mapped
    /// to `round(x * scale)`, so points within `0.5 / scale` per
    /// coordinate share one cached encoding. Larger = stricter matching
    /// (fewer false shares), smaller = more aggressive deduplication.
    pub quantization_scale: f64,
    /// Observability export directory: when set, the server appends
    /// lifecycle events to `serve_journal.jsonl` and writes the unified
    /// `obs_serve.json` report there on shutdown. `None` = no export
    /// (in-memory metrics still work).
    pub obs_dir: Option<PathBuf>,
    /// Per-request deadline: a request still unprocessed this long after
    /// it was enqueued is shed with
    /// [`crate::ServeError::DeadlineExceeded`] instead of riding its
    /// batch — bounded staleness beats a late answer. `None` = no
    /// deadline.
    pub deadline: Option<Duration>,
    /// Admission control: submissions are shed with
    /// [`crate::ServeError::Shed`] while the queue already holds this
    /// many requests. Unlike `queue_capacity` (which blocks `submit`
    /// and fails `try_submit` with `QueueFull` at the channel bound),
    /// this sheds *explicitly and early* on both paths, so an overload
    /// never turns into unbounded latency. `None` = no shedding.
    pub shed_queue_depth: Option<usize>,
    /// Armed fault plan the worker loop consults (batch panics, queue
    /// stalls). The default disarmed handle injects nothing. See
    /// `qk_chaos`.
    pub chaos: Chaos,
    /// Trace collector for batch-granular timeline events (queue,
    /// coalesce, encode, kernel, reply). Worker `w` records onto lane
    /// `(0, w)`; the driver that owns the tracer writes the shards
    /// after shutdown. `None` = no tracing. Per-request stage latency
    /// histograms (`serve.stage.*`) are recorded regardless.
    pub trace: Option<Tracer>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // Scale with the host: each worker evaluates its batch's
            // kernel rows serially on its own zipper workspace, so the
            // worker count *is* the inference parallelism.
            workers: std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(4)
                .clamp(2, 16),
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_max_bytes: None,
            quantization_scale: 1e6,
            obs_dir: None,
            deadline: None,
            shed_queue_depth: None,
            chaos: Chaos::disarmed(),
            trace: None,
        }
    }
}

impl ServeConfig {
    /// Defaults with the given worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..Self::default()
        }
    }

    /// Returns a copy with the structurally-zero fields clamped to their
    /// minimum legal values (`cache_capacity` 0 stays 0: cache off).
    pub(crate) fn normalized(&self) -> Self {
        ServeConfig {
            workers: self.workers.max(1),
            max_batch: self.max_batch.max(1),
            queue_capacity: self.queue_capacity.max(1),
            quantization_scale: if self.quantization_scale > 0.0 {
                self.quantization_scale
            } else {
                1e6
            },
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_zeros() {
        let cfg = ServeConfig {
            workers: 0,
            max_batch: 0,
            queue_capacity: 0,
            cache_capacity: 0,
            quantization_scale: -1.0,
            ..ServeConfig::default()
        }
        .normalized();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.cache_capacity, 0, "cache off must stay off");
        assert!(cfg.quantization_scale > 0.0);
    }
}
