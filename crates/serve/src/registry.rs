//! Versioned model registry with atomic hot-swap.
//!
//! The registry hands workers an `Arc` snapshot of the current model at
//! each batch start, so a deploy is one pointer swap: batches already in
//! flight drain on the old version while new batches pick up the new
//! one — no request is ever dropped or served by a half-installed model.
//!
//! Deploys also track the *encoding epoch*: encodings depend only on the
//! ansatz and truncation policy, so a retrain that keeps both (the
//! common "same circuit, more data" rollout) preserves the cache across
//! the swap, while a deploy that changes either bumps the epoch and
//! invalidates every cached state.

use parking_lot::RwLock;
use qk_core::QuantumKernelModel;
use std::sync::Arc;

/// One installed model plus its registry metadata.
pub struct ModelVersion {
    /// Monotonic deploy counter, starting at 1.
    pub version: u64,
    /// Monotonic encoding-parameter counter, starting at 1.
    pub encoding_epoch: u64,
    /// The model itself.
    pub model: QuantumKernelModel,
}

/// What a deploy did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploySummary {
    /// Version now serving.
    pub version: u64,
    /// Encoding epoch now serving.
    pub encoding_epoch: u64,
    /// `true` when the new model's ansatz or truncation differs from
    /// the previous version's (cached encodings are stale).
    pub encoding_changed: bool,
}

/// Atomic holder of the serving [`ModelVersion`].
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
}

impl ModelRegistry {
    /// A registry serving `model` as version 1, epoch 1.
    pub fn new(model: QuantumKernelModel) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(ModelVersion {
                version: 1,
                encoding_epoch: 1,
                model,
            })),
        }
    }

    /// The version serving new batches right now.
    pub fn current(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.current.read())
    }

    /// Installs `model` as the next version. In-flight batches keep
    /// their `Arc` to the old version and drain undisturbed.
    pub fn deploy(&self, model: QuantumKernelModel) -> DeploySummary {
        let mut slot = self.current.write();
        let encoding_changed =
            model.ansatz() != slot.model.ansatz() || model.truncation() != slot.model.truncation();
        let next = ModelVersion {
            version: slot.version + 1,
            encoding_epoch: slot.encoding_epoch + u64::from(encoding_changed),
            model,
        };
        let summary = DeploySummary {
            version: next.version,
            encoding_epoch: next.encoding_epoch,
            encoding_changed,
        };
        *slot = Arc::new(next);
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qk_circuit::AnsatzConfig;
    use qk_data::{generate, prepare_experiment, SyntheticConfig};
    use qk_mps::TruncationConfig;
    use qk_svm::SmoParams;
    use qk_tensor::backend::CpuBackend;

    fn model(gamma: f64) -> QuantumKernelModel {
        let data = generate(&SyntheticConfig::small(5));
        let split = prepare_experiment(&data, 20, 4, 5);
        QuantumKernelModel::fit(
            &split.train.features,
            &split.train.label_signs(),
            &AnsatzConfig::new(1, 1, gamma),
            &TruncationConfig::default(),
            &SmoParams::with_c(1.0),
            &CpuBackend::new(),
        )
    }

    #[test]
    fn deploys_version_and_epoch() {
        let registry = ModelRegistry::new(model(0.5));
        let v1 = registry.current();
        assert_eq!((v1.version, v1.encoding_epoch), (1, 1));

        // Same encoding parameters: version moves, epoch does not.
        let s = registry.deploy(model(0.5));
        assert_eq!(
            s,
            DeploySummary {
                version: 2,
                encoding_epoch: 1,
                encoding_changed: false
            }
        );

        // Different gamma: epoch bumps.
        let s = registry.deploy(model(0.9));
        assert_eq!(
            s,
            DeploySummary {
                version: 3,
                encoding_epoch: 2,
                encoding_changed: true
            }
        );

        // The old Arc is still usable by an in-flight batch.
        assert_eq!(v1.version, 1);
        assert_eq!(v1.model.num_features(), 4);
        assert_eq!(registry.current().version, 3);
    }
}
