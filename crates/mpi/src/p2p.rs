//! Point-to-point messaging: per-rank mailboxes with tag matching.
//!
//! Each rank owns a mailbox — a condvar-guarded queue of envelopes.
//! `send` deposits into the destination's mailbox and returns immediately
//! (buffered semantics, like `MPI_Bsend`); `recv` scans the local mailbox
//! for the first envelope matching a `(source, tag)` filter and blocks
//! until one arrives. Out-of-order arrivals with non-matching tags stay
//! queued, so independent protocols can share the wire, and matching
//! envelopes from one sender are delivered in send order (MPI's
//! non-overtaking guarantee).

use parking_lot::{Condvar, Mutex};

/// Wildcard tag: matches any message tag (like `MPI_ANY_TAG`).
pub const ANY_TAG: u32 = u32::MAX;

/// Source filter for [`crate::Process::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Receive only from the given rank.
    Rank(usize),
    /// Receive from whichever rank's message matches first
    /// (like `MPI_ANY_SOURCE`).
    Any,
}

impl Source {
    fn matches(&self, src: usize) -> bool {
        match self {
            Source::Rank(r) => *r == src,
            Source::Any => true,
        }
    }
}

/// A received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

#[derive(Debug)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u32,
    pub class: Class,
    pub payload: Vec<u8>,
}

/// Message class separates user traffic from internal collective
/// traffic, so a collective can never consume (or be confused by) a
/// user-tagged message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    /// User point-to-point traffic.
    User,
    /// Internal collective round `r` of collective sequence number `seq`.
    Collective { seq: u64, round: u32 },
}

/// One rank's mailbox.
#[derive(Default)]
pub(crate) struct Mailbox {
    queue: Mutex<Vec<Envelope>>,
    arrived: Condvar,
}

impl Mailbox {
    pub(crate) fn deposit(&self, envelope: Envelope) {
        let mut q = self.queue.lock();
        q.push(envelope);
        self.arrived.notify_all();
    }

    /// Blocks until an envelope matching the filter is queued, removes and
    /// returns it. The earliest matching envelope wins, preserving
    /// per-sender ordering.
    pub(crate) fn take(&self, class: Class, source: Source, tag: u32) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| {
                e.class == class && source.matches(e.src) && (tag == ANY_TAG || e.tag == tag)
            }) {
                return q.remove(pos);
            }
            self.arrived.wait(&mut q);
        }
    }

    /// Non-blocking variant of [`Mailbox::take`].
    pub(crate) fn try_take(&self, class: Class, source: Source, tag: u32) -> Option<Envelope> {
        let mut q = self.queue.lock();
        q.iter()
            .position(|e| {
                e.class == class && source.matches(e.src) && (tag == ANY_TAG || e.tag == tag)
            })
            .map(|pos| q.remove(pos))
    }

    /// Number of queued envelopes (any class); used to assert clean
    /// shutdown.
    pub(crate) fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(src: usize, tag: u32, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            class: Class::User,
            payload: vec![byte],
        }
    }

    #[test]
    fn take_matches_source_and_tag() {
        let mb = Mailbox::default();
        mb.deposit(user(0, 7, 1));
        mb.deposit(user(1, 7, 2));
        mb.deposit(user(0, 9, 3));
        let e = mb.take(Class::User, Source::Rank(1), 7);
        assert_eq!(e.payload, vec![2]);
        let e = mb.take(Class::User, Source::Rank(0), 9);
        assert_eq!(e.payload, vec![3]);
        let e = mb.take(Class::User, Source::Any, ANY_TAG);
        assert_eq!(e.payload, vec![1]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn per_sender_order_is_preserved() {
        let mb = Mailbox::default();
        mb.deposit(user(0, 5, 10));
        mb.deposit(user(0, 5, 11));
        mb.deposit(user(0, 5, 12));
        for expect in [10u8, 11, 12] {
            let e = mb.take(Class::User, Source::Rank(0), 5);
            assert_eq!(e.payload, vec![expect]);
        }
    }

    #[test]
    fn collective_class_is_isolated_from_user_traffic() {
        let mb = Mailbox::default();
        mb.deposit(user(0, 3, 1));
        mb.deposit(Envelope {
            src: 0,
            tag: 3,
            class: Class::Collective { seq: 1, round: 0 },
            payload: vec![99],
        });
        let e = mb.take(Class::Collective { seq: 1, round: 0 }, Source::Any, ANY_TAG);
        assert_eq!(e.payload, vec![99]);
        let e = mb.take(Class::User, Source::Any, ANY_TAG);
        assert_eq!(e.payload, vec![1]);
    }

    #[test]
    fn try_take_returns_none_on_no_match() {
        let mb = Mailbox::default();
        mb.deposit(user(2, 4, 7));
        assert!(mb.try_take(Class::User, Source::Rank(0), 4).is_none());
        assert!(mb.try_take(Class::User, Source::Rank(2), 5).is_none());
        assert!(mb.try_take(Class::User, Source::Rank(2), 4).is_some());
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn take_blocks_until_deposit() {
        use std::sync::Arc;
        let mb = Arc::new(Mailbox::default());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            let e = mb2.take(Class::User, Source::Rank(3), 1);
            e.payload[0]
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.deposit(user(3, 1, 42));
        assert_eq!(handle.join().unwrap(), 42);
    }
}
