//! Collective operations over the point-to-point layer.
//!
//! Implemented with the textbook algorithms real MPI libraries use at
//! small scale, so communication volume and round structure are faithful:
//!
//! * barrier — dissemination algorithm, `ceil(log2 k)` rounds;
//! * broadcast — binomial tree rooted at `root`;
//! * gather / scatter — linear at the root;
//! * allgather — ring algorithm, `k - 1` steps (the same pattern the
//!   paper's round-robin strategy uses for state blocks);
//! * reduce / allreduce — linear reduce at the root (+ tree broadcast).
//!
//! Every collective call consumes one sequence number on each rank; the
//! MPI contract that all ranks invoke collectives in the same order is
//! what keeps sequence numbers aligned. Payload isolation from user
//! traffic is structural (a separate message class), so a collective can
//! never steal a user message.

use crate::p2p::Class;
use crate::world::Process;

/// Element-wise reduction operator for [`Process::reduce_f64`] /
/// [`Process::allreduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    fn apply(&self, acc: &mut [f64], rhs: &[f64]) {
        debug_assert_eq!(acc.len(), rhs.len());
        for (a, &b) in acc.iter_mut().zip(rhs) {
            *a = match self {
                ReduceOp::Sum => *a + b,
                ReduceOp::Max => a.max(b),
                ReduceOp::Min => a.min(b),
            };
        }
    }
}

fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "payload is not a f64 array");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

impl Process {
    /// Blocks until every rank has entered the barrier (dissemination
    /// algorithm: round `r` sends to `rank + 2^r`, receives from
    /// `rank - 2^r`, both modulo the world size).
    pub fn barrier(&mut self) {
        let k = self.world_size();
        if k == 1 {
            return;
        }
        let seq = self.next_collective_seq();
        let mut round = 0u32;
        let mut hop = 1usize;
        while hop < k {
            let dest = (self.rank() + hop) % k;
            let src = (self.rank() + k - hop) % k;
            let class = Class::Collective { seq, round };
            self.send_internal(dest, class, Vec::new());
            let _ = self.recv_internal(src, class);
            hop *= 2;
            round += 1;
        }
    }

    /// Broadcasts `data` from `root` to every rank; each rank returns the
    /// broadcast payload. Only the root's `data` is read (pass anything,
    /// e.g. an empty slice, elsewhere). Binomial tree: `ceil(log2 k)`
    /// rounds, each round doubling the set of ranks holding the data.
    pub fn broadcast(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        let k = self.world_size();
        assert!(root < k, "broadcast root {root} out of range");
        let seq = self.next_collective_seq();
        // Work in root-relative rank space so the tree is rooted at 0.
        let vrank = (self.rank() + k - root) % k;
        let mut payload = if vrank == 0 {
            data.to_vec()
        } else {
            Vec::new()
        };

        // Receive round: the highest power of two below or at vrank tells
        // which round this rank is reached in.
        if vrank != 0 {
            let bit = usize::BITS - 1 - vrank.leading_zeros(); // floor(log2 vrank)
            let src_v = vrank - (1 << bit);
            let src = (src_v + root) % k;
            payload = self.recv_internal(src, Class::Collective { seq, round: bit });
        }

        // Send rounds: after holding the data, fan out to vrank + 2^r for
        // increasing r.
        let first_round = if vrank == 0 {
            0
        } else {
            (usize::BITS - vrank.leading_zeros()) as usize // floor(log2) + 1
        };
        let mut r = first_round;
        while (1usize << r) < k {
            let dest_v = vrank + (1 << r);
            if dest_v < k {
                let dest = (dest_v + root) % k;
                self.send_internal(
                    dest,
                    Class::Collective {
                        seq,
                        round: r as u32,
                    },
                    payload.clone(),
                );
            }
            r += 1;
        }
        payload
    }

    /// Gathers one payload per rank at `root`; the root returns
    /// `Some(payloads)` in rank order, other ranks return `None`.
    pub fn gather(&mut self, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let k = self.world_size();
        assert!(root < k, "gather root {root} out of range");
        let seq = self.next_collective_seq();
        let class = Class::Collective { seq, round: 0 };
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); k];
            out[root] = data.to_vec();
            for src in (0..k).filter(|&r| r != root) {
                out[src] = self.recv_internal(src, class);
            }
            Some(out)
        } else {
            self.send_internal(root, class, data.to_vec());
            None
        }
    }

    /// Scatters one payload per rank from `root`; every rank returns its
    /// part. Only the root's `parts` is read and it must have exactly
    /// one entry per rank.
    pub fn scatter(&mut self, root: usize, parts: Option<&[Vec<u8>]>) -> Vec<u8> {
        let k = self.world_size();
        assert!(root < k, "scatter root {root} out of range");
        let seq = self.next_collective_seq();
        let class = Class::Collective { seq, round: 0 };
        if self.rank() == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), k, "scatter needs one part per rank");
            for dest in (0..k).filter(|&r| r != root) {
                self.send_internal(dest, class, parts[dest].clone());
            }
            parts[root].clone()
        } else {
            self.recv_internal(root, class)
        }
    }

    /// All ranks contribute one payload and receive all payloads in rank
    /// order. Ring algorithm: `k - 1` steps, each step forwarding the
    /// newest block to the right neighbour — total traffic `(k-1) * sum of
    /// payload sizes`, the same pattern as the paper's round-robin state
    /// rotation.
    pub fn allgather(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        let k = self.world_size();
        let seq = self.next_collective_seq();
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); k];
        out[self.rank()] = data.to_vec();
        let right = (self.rank() + 1) % k;
        let left = (self.rank() + k - 1) % k;
        // At step s, forward the block that originated at rank - s.
        for step in 0..k.saturating_sub(1) {
            let class = Class::Collective {
                seq,
                round: step as u32,
            };
            let outgoing_owner = (self.rank() + k - step) % k;
            self.send_internal(right, class, out[outgoing_owner].clone());
            let incoming_owner = (self.rank() + k - step - 1) % k;
            out[incoming_owner] = self.recv_internal(left, class);
        }
        out
    }

    /// Element-wise reduction of equal-length `f64` slices at `root`
    /// (linear algorithm). The root returns `Some(reduced)`.
    pub fn reduce_f64(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let gathered = self.gather(root, &f64s_to_bytes(data))?;
        let mut acc = bytes_to_f64s(&gathered[0]);
        for part in &gathered[1..] {
            let values = bytes_to_f64s(part);
            assert_eq!(values.len(), acc.len(), "reduce requires equal lengths");
            op.apply(&mut acc, &values);
        }
        Some(acc)
    }

    /// Reduction delivered to every rank (reduce at rank 0 + broadcast).
    pub fn allreduce_f64(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let reduced = self.reduce_f64(0, data, op);
        let payload = match &reduced {
            Some(values) => f64s_to_bytes(values),
            None => Vec::new(),
        };
        bytes_to_f64s(&self.broadcast(0, &payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run_world;

    #[test]
    fn barrier_synchronizes_all_world_sizes() {
        for k in 1..=9usize {
            // Completion without deadlock is the property under test.
            let out = run_world(k, |p| {
                p.barrier();
                p.barrier();
                p.rank()
            });
            assert_eq!(out.len(), k);
        }
    }

    #[test]
    fn barrier_orders_before_and_after() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        run_world(6, |p| {
            before.fetch_add(1, Ordering::SeqCst);
            p.barrier();
            // After the barrier, every rank's increment must be visible.
            if before.load(Ordering::SeqCst) != 6 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn broadcast_from_every_root() {
        for k in 1..=6usize {
            for root in 0..k {
                let out = run_world(k, |p| {
                    let data = if p.rank() == root {
                        vec![7u8, 8, 9]
                    } else {
                        Vec::new()
                    };
                    p.broadcast(root, &data)
                });
                for (rank, payload) in out.iter().enumerate() {
                    assert_eq!(payload, &vec![7u8, 8, 9], "k={k} root={root} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_world(5, |p| p.gather(2, &[p.rank() as u8 * 10]));
        for (rank, result) in out.iter().enumerate() {
            if rank == 2 {
                let parts = result.as_ref().unwrap();
                assert_eq!(parts.len(), 5);
                for (src, part) in parts.iter().enumerate() {
                    assert_eq!(part, &vec![src as u8 * 10]);
                }
            } else {
                assert!(result.is_none());
            }
        }
    }

    #[test]
    fn scatter_delivers_per_rank_parts() {
        let out = run_world(4, |p| {
            let parts: Option<Vec<Vec<u8>>> = if p.rank() == 1 {
                Some((0..4).map(|r| vec![r as u8; r + 1]).collect())
            } else {
                None
            };
            p.scatter(1, parts.as_deref())
        });
        for (rank, part) in out.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8; rank + 1]);
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        for k in 1..=6usize {
            let out = run_world(k, |p| p.allgather(&[p.rank() as u8, 0xAB]));
            for collected in &out {
                assert_eq!(collected.len(), k);
                for (src, part) in collected.iter().enumerate() {
                    assert_eq!(part, &vec![src as u8, 0xAB]);
                }
            }
        }
    }

    #[test]
    fn allgather_handles_unequal_sizes() {
        let out = run_world(4, |p| p.allgather(&vec![p.rank() as u8; p.rank() + 1]));
        for collected in &out {
            for (src, part) in collected.iter().enumerate() {
                assert_eq!(part.len(), src + 1);
            }
        }
    }

    #[test]
    fn reduce_sum_max_min() {
        let out = run_world(4, |p| {
            let data = [p.rank() as f64, -(p.rank() as f64), 1.0];
            (
                p.reduce_f64(0, &data, ReduceOp::Sum),
                p.reduce_f64(0, &data, ReduceOp::Max),
                p.reduce_f64(0, &data, ReduceOp::Min),
            )
        });
        let (sum, max, min) = &out[0];
        assert_eq!(sum.as_ref().unwrap(), &vec![6.0, -6.0, 4.0]);
        assert_eq!(max.as_ref().unwrap(), &vec![3.0, 0.0, 1.0]);
        assert_eq!(min.as_ref().unwrap(), &vec![0.0, -3.0, 1.0]);
        for (s, _, _) in &out[1..] {
            assert!(s.is_none());
        }
    }

    #[test]
    fn allreduce_reaches_every_rank() {
        let out = run_world(5, |p| p.allreduce_f64(&[p.rank() as f64], ReduceOp::Sum));
        for got in &out {
            assert_eq!(got, &vec![10.0]);
        }
    }

    #[test]
    fn collectives_interleave_with_user_traffic() {
        let out = run_world(3, |p| {
            // User message in flight across a barrier + broadcast.
            if p.rank() == 0 {
                p.send(2, 77, b"late");
            }
            p.barrier();
            let b = p.broadcast(1, if p.rank() == 1 { b"bc" } else { b"" });
            assert_eq!(b, b"bc");
            if p.rank() == 2 {
                let m = p.recv(crate::Source::Rank(0), 77);
                assert_eq!(m.payload, b"late");
            }
            p.allgather(&[p.rank() as u8]).len()
        });
        assert_eq!(out, vec![3, 3, 3]);
    }

    #[test]
    fn repeated_collectives_stay_aligned() {
        let out = run_world(4, |p| {
            let mut acc = 0.0;
            for i in 0..10 {
                let r = p.allreduce_f64(&[i as f64 + p.rank() as f64], ReduceOp::Sum);
                acc += r[0];
            }
            acc
        });
        // sum over i of (4i + 0+1+2+3) = 4*45 + 10*6.
        for v in out {
            assert_eq!(v, 240.0);
        }
    }
}
