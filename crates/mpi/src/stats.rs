//! Per-rank communication accounting.

use std::time::Duration;

/// Traffic and blocking record for one rank.
///
/// Payload bytes are counted once on each side (sent at the sender,
/// received at the receiver); envelope overhead is not modelled. Blocked
/// time is the wall-clock time spent waiting inside `recv`-like calls —
/// the quantity a communication-bound rank observes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Total payload bytes passed to `send`.
    pub bytes_sent: usize,
    /// Total payload bytes returned from `recv`.
    pub bytes_received: usize,
    /// Number of messages sent.
    pub messages_sent: usize,
    /// Number of messages received.
    pub messages_received: usize,
    /// Wall-clock time blocked waiting for messages.
    pub blocked: Duration,
}

impl CommStats {
    /// Merges another record into this one (e.g. summing across ranks).
    pub fn merge(&mut self, other: &CommStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.blocked += other.blocked;
    }

    /// Total bytes moved through this rank in either direction.
    pub fn bytes_total(&self) -> usize {
        self.bytes_sent + self.bytes_received
    }

    /// Total messages moved through this rank in either direction.
    pub fn messages_total(&self) -> usize {
        self.messages_sent + self.messages_received
    }

    /// Blocked wall time in whole microseconds — the unit the trace
    /// timeline and journal events carry.
    pub fn blocked_us(&self) -> u64 {
        u64::try_from(self.blocked.as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = CommStats {
            bytes_sent: 10,
            bytes_received: 20,
            messages_sent: 1,
            messages_received: 2,
            blocked: Duration::from_millis(5),
        };
        let b = CommStats {
            bytes_sent: 3,
            bytes_received: 4,
            messages_sent: 5,
            messages_received: 6,
            blocked: Duration::from_millis(7),
        };
        a.merge(&b);
        assert_eq!(a.bytes_sent, 13);
        assert_eq!(a.bytes_received, 24);
        assert_eq!(a.messages_sent, 6);
        assert_eq!(a.messages_received, 8);
        assert_eq!(a.blocked, Duration::from_millis(12));
        assert_eq!(a.bytes_total(), 37);
        assert_eq!(a.messages_total(), 14);
        assert_eq!(a.blocked_us(), 12_000);
    }
}
