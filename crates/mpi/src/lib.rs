//! # qk-mpi
//!
//! A simulated message-passing substrate with an MPI-shaped API.
//!
//! The paper distributes its Gram-matrix computation over MPI ranks via
//! `mpi4py`. This crate reproduces the programming model — ranks, tagged
//! point-to-point messages, collectives — with OS threads standing in for
//! processes (DESIGN.md, substitution 2). What is preserved is precisely
//! what the paper's strategies exercise: data ownership (a message is the
//! only way state crosses a rank boundary), communication volume (every
//! payload byte is counted per rank), and blocking structure (receives
//! block until a matching message arrives).
//!
//! * [`world`] — rank spawning and the per-rank [`world::Process`] handle.
//! * [`p2p`] — mailbox delivery: tagged send/recv with source/tag
//!   filtering, like `MPI_Send`/`MPI_Recv` with `MPI_ANY_SOURCE`.
//! * [`collectives`] — barrier (dissemination), broadcast (binomial
//!   tree), gather/scatter (linear), allgather (ring), reduce/allreduce.
//! * [`stats`] — per-rank traffic and blocked-time accounting.
//! * [`heartbeat`] — coordinator-side liveness tracking for rank-death
//!   detection (MPI itself has no failure detector).
//!
//! Sends are *buffered* (they never block), so the ring and tree
//! communication patterns used by the kernel-distribution strategies are
//! deadlock-free by construction.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod heartbeat;
pub mod p2p;
pub mod stats;
pub mod world;

pub use collectives::ReduceOp;
pub use heartbeat::HeartbeatMonitor;
pub use p2p::{Message, Source, ANY_TAG};
pub use stats::CommStats;
pub use world::{run_world, Process};
