//! Rank spawning and the per-rank process handle.

use crate::p2p::{Class, Envelope, Mailbox, Message, Source};
use crate::stats::CommStats;
use std::sync::Arc;
use std::time::Instant;

/// Runs `world_size` ranks, each executing `body` on its own thread with
/// a [`Process`] handle, and returns their results in rank order.
///
/// Mirrors `mpiexec -n <world_size>`: every rank runs the same program
/// and branches on its rank id. Panics in any rank propagate (the whole
/// "job" aborts, as an MPI fatal error would).
///
/// # Panics
/// Panics if `world_size == 0`, if any rank panics, or if any mailbox
/// still holds undelivered messages when all ranks have returned (a
/// protocol error that MPI would surface as unfreed requests).
pub fn run_world<T, F>(world_size: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Process) -> T + Sync,
{
    assert!(world_size >= 1, "world size must be at least 1");
    let mailboxes: Arc<Vec<Mailbox>> =
        Arc::new((0..world_size).map(|_| Mailbox::default()).collect());

    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..world_size)
            .map(|rank| {
                let mailboxes = Arc::clone(&mailboxes);
                let body = &body;
                scope.spawn(move || {
                    let mut process = Process {
                        rank,
                        world_size,
                        mailboxes,
                        stats: CommStats::default(),
                        collective_seq: 0,
                    };
                    body(&mut process)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });

    for (rank, mb) in mailboxes.iter().enumerate() {
        assert_eq!(
            mb.pending(),
            0,
            "rank {rank} finished with undelivered messages"
        );
    }
    results
}

/// A rank's handle to the communication world (one per thread; the
/// `&mut` methods make accidental sharing a compile error, as rank state
/// is inherently thread-local).
pub struct Process {
    pub(crate) rank: usize,
    pub(crate) world_size: usize,
    pub(crate) mailboxes: Arc<Vec<Mailbox>>,
    pub(crate) stats: CommStats,
    /// Monotone counter giving each collective call a distinct sequence
    /// number; all ranks call collectives in the same order (the MPI
    /// contract), so counters agree across ranks.
    pub(crate) collective_seq: u64,
}

impl Process {
    /// This rank's id in `0..world_size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Communication record accumulated by this rank so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Sends `payload` to `dest` with `tag`. Buffered: returns
    /// immediately.
    ///
    /// # Panics
    /// Panics if `dest` is out of range or `tag` is the reserved
    /// [`crate::ANY_TAG`] value.
    pub fn send(&mut self, dest: usize, tag: u32, payload: &[u8]) {
        assert!(
            dest < self.world_size,
            "destination rank {dest} out of range"
        );
        assert_ne!(tag, crate::ANY_TAG, "ANY_TAG is receive-only");
        self.stats.bytes_sent += payload.len();
        self.stats.messages_sent += 1;
        self.mailboxes[dest].deposit(Envelope {
            src: self.rank,
            tag,
            class: Class::User,
            payload: payload.to_vec(),
        });
    }

    /// Blocks until a message matching the filter arrives and returns it.
    pub fn recv(&mut self, source: Source, tag: u32) -> Message {
        let t0 = Instant::now();
        let e = self.mailboxes[self.rank].take(Class::User, source, tag);
        self.stats.blocked += t0.elapsed();
        self.stats.bytes_received += e.payload.len();
        self.stats.messages_received += 1;
        Message {
            src: e.src,
            tag: e.tag,
            payload: e.payload,
        }
    }

    /// Non-blocking receive; `None` when no matching message is queued.
    pub fn try_recv(&mut self, source: Source, tag: u32) -> Option<Message> {
        let e = self.mailboxes[self.rank].try_take(Class::User, source, tag)?;
        self.stats.bytes_received += e.payload.len();
        self.stats.messages_received += 1;
        Some(Message {
            src: e.src,
            tag: e.tag,
            payload: e.payload,
        })
    }

    /// Combined send + receive (like `MPI_Sendrecv`); safe in rings
    /// because the send is buffered.
    pub fn send_recv(
        &mut self,
        dest: usize,
        send_tag: u32,
        payload: &[u8],
        source: Source,
        recv_tag: u32,
    ) -> Message {
        self.send(dest, send_tag, payload);
        self.recv(source, recv_tag)
    }

    // -- internal plumbing used by the collectives module ---------------

    pub(crate) fn send_internal(&mut self, dest: usize, class: Class, payload: Vec<u8>) {
        self.stats.bytes_sent += payload.len();
        self.stats.messages_sent += 1;
        self.mailboxes[dest].deposit(Envelope {
            src: self.rank,
            tag: 0,
            class,
            payload,
        });
    }

    pub(crate) fn recv_internal(&mut self, src: usize, class: Class) -> Vec<u8> {
        let t0 = Instant::now();
        let e = self.mailboxes[self.rank].take(class, Source::Rank(src), crate::ANY_TAG);
        self.stats.blocked += t0.elapsed();
        self.stats.bytes_received += e.payload.len();
        self.stats.messages_received += 1;
        e.payload
    }

    pub(crate) fn next_collective_seq(&mut self) -> u64 {
        self.collective_seq += 1;
        self.collective_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ANY_TAG;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run_world(5, |p| (p.rank(), p.world_size()));
        assert_eq!(ids, (0..5).map(|r| (r, 5)).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_world_works() {
        let out = run_world(1, |p| p.rank());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn ping_pong() {
        let out = run_world(2, |p| {
            if p.rank() == 0 {
                p.send(1, 1, b"ping");
                let m = p.recv(Source::Rank(1), 2);
                m.payload
            } else {
                let m = p.recv(Source::Rank(0), 1);
                assert_eq!(m.payload, b"ping");
                p.send(0, 2, b"pong");
                m.payload
            }
        });
        assert_eq!(out[0], b"pong");
        assert_eq!(out[1], b"ping");
    }

    #[test]
    fn ring_send_recv_does_not_deadlock() {
        let k = 6;
        let out = run_world(k, |p| {
            let right = (p.rank() + 1) % p.world_size();
            let left = (p.rank() + p.world_size() - 1) % p.world_size();
            let m = p.send_recv(right, 3, &[p.rank() as u8], Source::Rank(left), 3);
            m.payload[0] as usize
        });
        for (rank, &got) in out.iter().enumerate() {
            assert_eq!(got, (rank + k - 1) % k);
        }
    }

    #[test]
    fn any_source_receives_from_everyone() {
        let out = run_world(4, |p| {
            if p.rank() == 0 {
                let mut seen = [false; 4];
                for _ in 0..3 {
                    let m = p.recv(Source::Any, ANY_TAG);
                    seen[m.src] = true;
                }
                seen.iter().filter(|&&s| s).count()
            } else {
                p.send(0, p.rank() as u32, &[0]);
                0
            }
        });
        assert_eq!(out[0], 3);
    }

    #[test]
    fn stats_count_traffic() {
        let out = run_world(2, |p| {
            if p.rank() == 0 {
                p.send(1, 1, &[0u8; 100]);
                p.send(1, 1, &[0u8; 50]);
            } else {
                p.recv(Source::Rank(0), 1);
                p.recv(Source::Rank(0), 1);
            }
            p.stats()
        });
        assert_eq!(out[0].bytes_sent, 150);
        assert_eq!(out[0].messages_sent, 2);
        assert_eq!(out[1].bytes_received, 150);
        assert_eq!(out[1].messages_received, 2);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let out = run_world(2, |p| {
            if p.rank() == 0 {
                // Nothing has been sent to rank 0 with tag 9.
                let miss = p.try_recv(Source::Any, 9).is_none();
                p.send(1, 1, b"x");
                miss
            } else {
                p.recv(Source::Rank(0), 1);
                true
            }
        });
        assert!(out[0] && out[1]);
    }

    #[test]
    #[should_panic(expected = "undelivered")]
    fn leftover_messages_are_a_protocol_error() {
        run_world(2, |p| {
            if p.rank() == 0 {
                p.send(1, 1, b"orphan");
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn send_to_invalid_rank_aborts_world() {
        run_world(1, |p| p.send(7, 0, b"x"));
    }
}
