//! Liveness tracking for rank-death detection.
//!
//! MPI itself has no failure detector: a dead rank simply stops
//! answering and every collective involving it wedges. The standard
//! operational fix — and the one the distributed Gram drill uses — is
//! an application-level heartbeat: workers send periodic progress
//! beats to a coordinator, which declares a rank dead once it has been
//! silent past a timeout without having announced completion. The
//! monitor is deliberately a pure bookkeeping structure over
//! [`std::time::Instant`]s: the coordinator owns it, feeds it observed
//! beats, and asks it to sweep; all messaging stays in the caller's
//! hands so the detector composes with any protocol.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    /// Beating (or not yet overdue).
    Alive,
    /// Announced completion; exempt from timeouts forever after.
    Done,
    /// Swept after staying silent past the timeout. Sticky: a late
    /// beat from a declared-dead rank is ignored, because the
    /// coordinator has already re-planned around the death and a
    /// resurrection would fork the protocol.
    Dead,
}

/// A coordinator-side failure detector over per-rank heartbeats.
///
/// Every rank starts alive with its clock at the monitor's creation
/// time, so the timeout bounds *initial* silence too — a rank that
/// dies before its first beat is still detected.
#[derive(Debug)]
pub struct HeartbeatMonitor {
    timeout: Duration,
    last_beat: Vec<Instant>,
    health: Vec<Health>,
}

impl HeartbeatMonitor {
    /// A monitor for `world_size` ranks declaring a silent,
    /// not-yet-done rank dead after `timeout`.
    pub fn new(world_size: usize, timeout: Duration) -> Self {
        let now = Instant::now();
        HeartbeatMonitor {
            timeout,
            last_beat: vec![now; world_size],
            health: vec![Health::Alive; world_size],
        }
    }

    /// Records a heartbeat from `rank`. Beats from ranks already
    /// declared dead are ignored (death is sticky).
    pub fn beat(&mut self, rank: usize) {
        if self.health[rank] == Health::Alive {
            self.last_beat[rank] = Instant::now();
        }
    }

    /// Records that `rank` announced completion: it stops beating
    /// legitimately and is exempt from all future sweeps.
    pub fn mark_done(&mut self, rank: usize) {
        if self.health[rank] == Health::Alive {
            self.health[rank] = Health::Done;
        }
    }

    /// Declares every overdue alive rank dead and returns the ranks
    /// that died in *this* sweep (ascending; empty when nothing
    /// changed).
    pub fn sweep(&mut self) -> Vec<usize> {
        let now = Instant::now();
        let mut newly_dead = Vec::new();
        for rank in 0..self.health.len() {
            if self.health[rank] == Health::Alive
                && now.duration_since(self.last_beat[rank]) > self.timeout
            {
                self.health[rank] = Health::Dead;
                newly_dead.push(rank);
            }
        }
        newly_dead
    }

    /// `true` once every rank is either done or dead — the coordinator
    /// can stop polling and start re-planning.
    pub fn all_settled(&self) -> bool {
        self.health.iter().all(|&h| h != Health::Alive)
    }

    /// Whether `rank` has been declared dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.health[rank] == Health::Dead
    }

    /// Ranks declared dead so far, ascending.
    pub fn dead(&self) -> Vec<usize> {
        self.ranks_where(Health::Dead)
    }

    /// Ranks not declared dead (alive or done), ascending.
    pub fn live(&self) -> Vec<usize> {
        (0..self.health.len())
            .filter(|&r| self.health[r] != Health::Dead)
            .collect()
    }

    /// Ranks that announced completion, ascending.
    pub fn done(&self) -> Vec<usize> {
        self.ranks_where(Health::Done)
    }

    fn ranks_where(&self, want: Health) -> Vec<usize> {
        (0..self.health.len())
            .filter(|&r| self.health[r] == want)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_millis(20);

    #[test]
    fn silent_ranks_die_after_timeout() {
        let mut m = HeartbeatMonitor::new(3, SHORT);
        assert!(m.sweep().is_empty(), "nothing is overdue immediately");
        std::thread::sleep(SHORT * 2);
        assert_eq!(m.sweep(), vec![0, 1, 2]);
        assert!(m.all_settled());
        assert_eq!(m.live(), Vec::<usize>::new());
    }

    #[test]
    fn beats_postpone_death_and_done_exempts() {
        let mut m = HeartbeatMonitor::new(3, SHORT);
        m.mark_done(2);
        std::thread::sleep(SHORT / 2);
        m.beat(1);
        std::thread::sleep(SHORT.mul_f32(0.75));
        // Rank 0 is past the timeout; rank 1 beat recently; rank 2 is
        // done and exempt no matter how silent.
        assert_eq!(m.sweep(), vec![0]);
        assert!(!m.is_dead(1));
        assert!(!m.is_dead(2));
        assert_eq!(m.dead(), vec![0]);
        assert_eq!(m.live(), vec![1, 2]);
        assert_eq!(m.done(), vec![2]);
    }

    #[test]
    fn death_is_sticky_and_sweeps_are_idempotent() {
        let mut m = HeartbeatMonitor::new(2, SHORT);
        m.mark_done(1);
        std::thread::sleep(SHORT * 2);
        assert_eq!(m.sweep(), vec![0]);
        // A late beat or completion cannot resurrect a swept rank.
        m.beat(0);
        m.mark_done(0);
        assert!(m.sweep().is_empty());
        assert!(m.is_dead(0));
        assert!(m.all_settled());
    }

    #[test]
    fn everyone_done_settles_without_deaths() {
        let mut m = HeartbeatMonitor::new(4, SHORT);
        for r in 0..4 {
            assert!(!m.all_settled());
            m.mark_done(r);
        }
        assert!(m.all_settled());
        std::thread::sleep(SHORT * 2);
        assert!(m.sweep().is_empty());
        assert_eq!(m.dead(), Vec::<usize>::new());
    }
}
