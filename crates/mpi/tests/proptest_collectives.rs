//! Property-based checks of the collective algorithms under random
//! world sizes, roots and payloads.

use proptest::prelude::*;
use qk_mpi::{run_world, ReduceOp, Source, ANY_TAG};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcast delivers the root's payload bit-exactly to all ranks,
    /// for any root and world size.
    #[test]
    fn broadcast_is_exact(
        k in 1usize..8,
        root_seed in 0usize..64,
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let root = root_seed % k;
        let out = run_world(k, |p| {
            let data = if p.rank() == root { payload.clone() } else { Vec::new() };
            p.broadcast(root, &data)
        });
        for got in out {
            prop_assert_eq!(&got, &payload);
        }
    }

    /// gather(root) then scatter(root) returns each rank its own payload.
    #[test]
    fn gather_scatter_roundtrip(
        k in 1usize..8,
        root_seed in 0usize..64,
        seed in any::<u8>(),
    ) {
        let root = root_seed % k;
        let out = run_world(k, |p| {
            let mine = vec![seed ^ p.rank() as u8; p.rank() % 5 + 1];
            let gathered = p.gather(root, &mine);
            let parts: Option<Vec<Vec<u8>>> = gathered;
            let back = p.scatter(root, parts.as_deref());
            (mine, back)
        });
        for (mine, back) in out {
            prop_assert_eq!(mine, back);
        }
    }

    /// Allgather equals what gather-at-every-root would produce.
    #[test]
    fn allgather_is_consistent(
        k in 1usize..7,
        seed in any::<u8>(),
    ) {
        let out = run_world(k, |p| p.allgather(&[seed, p.rank() as u8]));
        for collected in &out {
            prop_assert_eq!(collected.len(), k);
            for (src, part) in collected.iter().enumerate() {
                prop_assert_eq!(part.as_slice(), &[seed, src as u8]);
            }
        }
    }

    /// Allreduce(sum) is the arithmetic sum regardless of world size.
    #[test]
    fn allreduce_sum_is_exact_on_integers(
        k in 1usize..8,
        values in prop::collection::vec(-100i32..100, 1..6),
    ) {
        let out = run_world(k, |p| {
            let data: Vec<f64> = values.iter().map(|&v| (v + p.rank() as i32) as f64).collect();
            p.allreduce_f64(&data, ReduceOp::Sum)
        });
        let rank_sum: i32 = (0..k as i32).sum();
        for got in out {
            for (i, &v) in got.iter().enumerate() {
                prop_assert_eq!(v, (values[i] * k as i32 + rank_sum) as f64);
            }
        }
    }

    /// Random point-to-point exchanges all arrive: every rank sends one
    /// message to a random peer; total received equals total sent.
    #[test]
    fn random_exchanges_conserve_messages(
        k in 2usize..8,
        targets in prop::collection::vec(0usize..64, 8),
    ) {
        let out = run_world(k, |p| {
            let dest = targets[p.rank() % targets.len()] % p.world_size();
            // Self-sends are legal (MPI allows them); deliver to own queue.
            p.send(dest, 5, &[p.rank() as u8]);
            p.barrier();
            let mut got = 0usize;
            while p.try_recv(Source::Any, ANY_TAG).is_some() {
                got += 1;
            }
            got
        });
        let total: usize = out.iter().sum();
        prop_assert_eq!(total, k);
    }
}
