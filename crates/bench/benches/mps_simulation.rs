//! Criterion benchmarks of the MPS engine: full-circuit simulation and
//! inner products across interaction distances and qubit counts — the
//! per-primitive view of the paper's Figs. 5 and 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qk_bench::sample_rows;
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::{Mps, MpsSimulator, TruncationConfig};
use qk_tensor::backend::{AcceleratorBackend, CpuBackend, DeviceModel};

fn bench_simulation_vs_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("mps_sim_vs_distance");
    group.sample_size(10);
    let m = 16;
    let rows = sample_rows(1, m, 51);
    let cpu = CpuBackend::new();
    for &d in &[1usize, 2, 3] {
        let circuit = feature_map_circuit(&rows[0], &AnsatzConfig::new(2, d, 1.0));
        group.bench_with_input(BenchmarkId::new("cpu", d), &d, |bch, _| {
            let sim = MpsSimulator::new(&cpu);
            bch.iter(|| sim.simulate(&circuit));
        });
    }
    group.finish();
}

fn bench_simulation_vs_qubits(c: &mut Criterion) {
    let mut group = c.benchmark_group("mps_sim_vs_qubits");
    group.sample_size(10);
    let cpu = CpuBackend::new();
    for &m in &[8usize, 16, 32, 64] {
        let rows = sample_rows(1, m, 52);
        let circuit = feature_map_circuit(&rows[0], &AnsatzConfig::qml_default());
        group.bench_with_input(BenchmarkId::new("d1_qml", m), &m, |bch, _| {
            let sim = MpsSimulator::new(&cpu);
            bch.iter(|| sim.simulate(&circuit));
        });
    }
    group.finish();
}

fn prepared_states(m: usize, d: usize) -> (Mps, Mps) {
    let cpu = CpuBackend::new();
    let sim = MpsSimulator::new(&cpu);
    let rows = sample_rows(2, m, 53);
    let a = sim
        .simulate(&feature_map_circuit(
            &rows[0],
            &AnsatzConfig::new(2, d, 1.0),
        ))
        .0;
    let b = sim
        .simulate(&feature_map_circuit(
            &rows[1],
            &AnsatzConfig::new(2, d, 1.0),
        ))
        .0;
    (a, b)
}

fn bench_inner_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_product");
    let cpu = CpuBackend::new();
    let acc = AcceleratorBackend::new(DeviceModel::ideal());
    for &d in &[1usize, 2, 3] {
        let (a, b) = prepared_states(16, d);
        group.bench_with_input(BenchmarkId::new("cpu", d), &d, |bch, _| {
            bch.iter(|| a.inner_with(&cpu, &b));
        });
        group.bench_with_input(BenchmarkId::new("accel_ideal", d), &d, |bch, _| {
            bch.iter(|| a.inner_with(&acc, &b));
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    // The round-robin strategy's communication payload.
    let mut group = c.benchmark_group("mps_serialization");
    let (a, _) = prepared_states(32, 2);
    group.bench_function("to_bytes", |bch| bch.iter(|| a.to_bytes()));
    let bytes = a.to_bytes();
    group.bench_function("from_bytes", |bch| bch.iter(|| Mps::from_bytes(&bytes)));
    group.finish();
}

fn bench_canonicalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonicalization");
    let (a, _) = prepared_states(24, 3);
    group.bench_function("full_sweep", |bch| {
        bch.iter(|| {
            let mut state = a.clone();
            state.canonicalize_to(23);
            state.canonicalize_to(0);
            state
        })
    });
    group.finish();
}

fn bench_truncation_cutoffs(c: &mut Criterion) {
    // Ablation: the paper's 1e-16 cutoff vs lossier settings.
    let mut group = c.benchmark_group("truncation_cutoff");
    group.sample_size(10);
    let cpu = CpuBackend::new();
    let rows = sample_rows(1, 16, 54);
    let circuit = feature_map_circuit(&rows[0], &AnsatzConfig::new(2, 3, 1.0));
    for &cutoff in &[1e-16f64, 1e-8, 1e-4] {
        group.bench_with_input(
            BenchmarkId::new("cutoff", format!("{cutoff:e}")),
            &cutoff,
            |bch, &cutoff| {
                let sim =
                    MpsSimulator::new(&cpu).with_truncation(TruncationConfig::with_cutoff(cutoff));
                bch.iter(|| sim.simulate(&circuit));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation_vs_distance,
    bench_simulation_vs_qubits,
    bench_inner_product,
    bench_serialization,
    bench_canonicalization,
    bench_truncation_cutoffs
);
criterion_main!(benches);
