//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * RXX's operator-Schmidt rank 2 (the paper's footnote 5) vs a generic
//!   dense two-qubit unitary (rank 4): bond growth, and hence runtime,
//!   differs sharply.
//! * Accelerator launch latency sweep: how the device model moves the
//!   CPU/GPU crossover.
//! * Commuting-gate emission order: the `<= 2d`-layer schedule vs a
//!   scrambled edge order (orthogonality-center movement cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qk_bench::sample_rows;
use qk_circuit::ansatz::{feature_map_circuit, linear_chain_edges, rxx_angle, AnsatzConfig};
use qk_circuit::{Circuit, Gate};
use qk_mps::MpsSimulator;
use qk_tensor::backend::{AcceleratorBackend, CpuBackend, DeviceModel};
use qk_tensor::complex::c64;
use qk_tensor::svd::split_two_qubit_gate;
use std::time::Duration;

fn bench_rxx_vs_generic_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_schmidt_rank");
    group.sample_size(10);
    let cpu = CpuBackend::new();
    let m = 12;

    // Chain of RXX gates (Schmidt rank 2: half the theta singular values
    // vanish and are truncated).
    let mut rxx = Circuit::new(m);
    for q in 0..m {
        rxx.push1(Gate::H, q);
        rxx.push1(Gate::Rz(0.7), q);
    }
    for q in 0..m - 1 {
        rxx.push2(Gate::Rxx(0.9), q, q + 1);
    }

    // Same layout with a generic (rank-4) two-qubit unitary built from
    // composed rotations.
    let generic = {
        let a = Gate::Rxx(0.9).matrix();
        let b = Gate::Rzz(1.3).matrix();
        let ab = qk_tensor::contract(&a, &[1], &b, &[0]);
        let mut entries = [c64(0.0, 0.0); 16];
        entries.copy_from_slice(ab.data());
        Gate::Unitary2(Box::new(entries))
    };
    let mut dense = Circuit::new(m);
    for q in 0..m {
        dense.push1(Gate::H, q);
        dense.push1(Gate::Rz(0.7), q);
    }
    for q in 0..m - 1 {
        dense.push2(generic.clone(), q, q + 1);
    }

    group.bench_function("rxx_rank2_chain", |bch| {
        let sim = MpsSimulator::new(&cpu);
        bch.iter(|| sim.simulate(&rxx));
    });
    group.bench_function("generic_rank4_chain", |bch| {
        let sim = MpsSimulator::new(&cpu);
        bch.iter(|| sim.simulate(&dense));
    });
    group.bench_function("gate_split_svd", |bch| {
        let gate = Gate::Rxx(0.9).matrix();
        bch.iter(|| split_two_qubit_gate(gate.data(), 1e-12));
    });
    group.finish();
}

fn bench_launch_latency_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_launch_latency");
    group.sample_size(10);
    let rows = sample_rows(1, 14, 71);
    let circuit = feature_map_circuit(&rows[0], &AnsatzConfig::new(2, 2, 1.0));
    for &micros in &[0u64, 20, 80] {
        let model = DeviceModel {
            launch_latency: Duration::from_micros(micros),
            transfer_bytes_per_sec: f64::INFINITY,
            compute_speedup: 1.0,
        };
        group.bench_with_input(BenchmarkId::new("accel_sim", micros), &micros, |bch, _| {
            let acc = AcceleratorBackend::new(model);
            let sim = MpsSimulator::new(&acc);
            bch.iter(|| sim.simulate(&circuit));
        });
    }
    group.finish();
}

fn bench_emission_order(c: &mut Criterion) {
    // Layered schedule (as emitted by the ansatz builder) vs an edge order
    // scrambled across distances, which forces extra center movement.
    let mut group = c.benchmark_group("xx_emission_order");
    group.sample_size(10);
    let cpu = CpuBackend::new();
    let m = 12;
    let d = 3;
    let rows = sample_rows(1, m, 72);
    let x = &rows[0];
    let gamma = 1.0;

    let layered = feature_map_circuit(x, &AnsatzConfig::new(2, d, gamma));

    let mut scrambled = Circuit::new(m);
    for q in 0..m {
        scrambled.push1(Gate::H, q);
    }
    let mut edges = linear_chain_edges(m, d);
    // Deterministic scramble: reverse-interleave.
    edges.sort_by_key(|&(i, j)| (j * 31 + i * 17) % 23);
    for _rep in 0..2 {
        for (q, &xi) in x.iter().enumerate() {
            scrambled.push1(Gate::Rz(2.0 * gamma * xi), q);
        }
        for &(i, j) in &edges {
            scrambled.push2(Gate::Rxx(rxx_angle(gamma, x[i], x[j])), i, j);
        }
    }

    group.bench_function("layered_schedule", |bch| {
        let sim = MpsSimulator::new(&cpu);
        bch.iter(|| sim.simulate(&layered));
    });
    group.bench_function("scrambled_order", |bch| {
        let sim = MpsSimulator::new(&cpu);
        bch.iter(|| sim.simulate(&scrambled));
    });
    group.finish();
}

fn bench_kernel_diagnostics(c: &mut Criterion) {
    // Spectral diagnostics cost: the Jacobi eigensolver is O(n^3) per
    // sweep, the geometric difference adds CG solves + power iteration.
    // Both must stay cheap relative to Gram assembly for the diagnostics
    // to be usable inline in the table2/table3 harnesses.
    use qk_svm::{effective_dimension, geometric_difference, KernelMatrix};
    let mut group = c.benchmark_group("kernel_diagnostics");
    group.sample_size(10);
    for &n in &[16usize, 48, 96] {
        let k1 = KernelMatrix::from_fn(n, |i, j| {
            let d = i as f64 - j as f64;
            (-d * d / 16.0).exp()
        });
        let k2 = KernelMatrix::from_fn(n, |i, j| if (i / 4) == (j / 4) { 1.0 } else { 0.05 });
        group.bench_with_input(BenchmarkId::new("effective_dimension", n), &n, |bch, _| {
            bch.iter(|| effective_dimension(&k1));
        });
        group.bench_with_input(BenchmarkId::new("geometric_difference", n), &n, |bch, _| {
            bch.iter(|| geometric_difference(&k1, &k2, 1e-6));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rxx_vs_generic_gate,
    bench_launch_latency_sweep,
    bench_emission_order,
    bench_kernel_diagnostics
);
criterion_main!(benches);
