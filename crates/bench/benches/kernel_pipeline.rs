//! Criterion benchmarks of the kernel-level pipeline: Gram assembly,
//! distribution strategies, the SVM solve, and the classical baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qk_bench::sample_rows;
use qk_circuit::AnsatzConfig;
use qk_core::distributed::{distributed_gram, Strategy};
use qk_core::gram::gram_matrix;
use qk_core::states::simulate_states;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_svm::{gaussian_gram, scale_bandwidth, train_svc, SmoParams};
use qk_tensor::backend::CpuBackend;

fn bench_gram_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_assembly");
    group.sample_size(10);
    let cpu = CpuBackend::new();
    let tc = TruncationConfig::default();
    let ansatz = AnsatzConfig::qml_default();
    for &n in &[16usize, 32, 64] {
        let rows = sample_rows(n, 16, 61);
        let states = simulate_states(&rows, &ansatz, &cpu, &tc).states;
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |bch, _| {
            bch.iter(|| gram_matrix(&states, &cpu));
        });
    }
    group.finish();
}

fn bench_distribution_strategies(c: &mut Criterion) {
    // The paper's Fig. 4 strategies head to head at equal process counts.
    let mut group = c.benchmark_group("distribution_strategy");
    group.sample_size(10);
    let cpu = CpuBackend::new();
    let tc = TruncationConfig::default();
    let ansatz = AnsatzConfig::qml_default();
    let rows = sample_rows(32, 16, 62);
    for strategy in [Strategy::NoMessaging, Strategy::RoundRobin] {
        group.bench_with_input(
            BenchmarkId::new(format!("{strategy:?}"), 4),
            &strategy,
            |bch, &strategy| {
                bch.iter(|| distributed_gram(&rows, &ansatz, &cpu, &tc, 4, strategy));
            },
        );
    }
    group.finish();
}

fn bench_inference_block_strategies(c: &mut Criterion) {
    // Rectangular-kernel distribution (Sec. II-D's inference case):
    // circulating the small test partitions (round-robin) vs redundant
    // simulation (no-messaging).
    use qk_core::distributed_inference::distributed_kernel_block;
    let mut group = c.benchmark_group("inference_block_strategy");
    group.sample_size(10);
    let cpu = CpuBackend::new();
    let tc = TruncationConfig::default();
    let ansatz = AnsatzConfig::qml_default();
    let train = sample_rows(32, 16, 63);
    let test = sample_rows(8, 16, 64);
    for strategy in [Strategy::NoMessaging, Strategy::RoundRobin] {
        group.bench_with_input(
            BenchmarkId::new(format!("{strategy:?}"), 4),
            &strategy,
            |bch, &strategy| {
                bch.iter(|| {
                    distributed_kernel_block(&test, &train, &ansatz, &cpu, &tc, 4, strategy)
                });
            },
        );
    }
    group.finish();
}

fn bench_svm_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_solve");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let data = generate(&SyntheticConfig {
            num_features: 10,
            num_illicit: n,
            num_licit: n,
            latent_dim: 6,
            noise: 1.6,
            seed: 63,
        });
        let split = prepare_experiment(&data, n, 10, 63);
        let alpha = scale_bandwidth(&split.train.features);
        let kernel = gaussian_gram(&split.train.features, alpha);
        let labels = split.train.label_signs();
        group.bench_with_input(BenchmarkId::new("smo", n), &n, |bch, _| {
            bch.iter(|| train_svc(&kernel, &labels, &SmoParams::with_c(1.0)));
        });
    }
    group.finish();
}

fn bench_gaussian_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_kernel");
    for &n in &[64usize, 256] {
        let rows = sample_rows(n, 20, 64);
        group.bench_with_input(BenchmarkId::new("gram", n), &n, |bch, _| {
            bch.iter(|| gaussian_gram(&rows, 0.5));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gram_assembly,
    bench_distribution_strategies,
    bench_inference_block_strategies,
    bench_svm_solve,
    bench_gaussian_kernel
);
criterion_main!(benches);
