//! Criterion micro-benchmarks of the tensor primitives: GEMM, SVD and QR
//! on the matrix sizes an MPS simulation actually produces, serial vs
//! parallel — the microscopic cause of the paper's Fig. 5 crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qk_tensor::complex::{c64, Complex64};
use qk_tensor::matrix::{gemm_parallel, gemm_serial};
use qk_tensor::svd::{svd, svd_parallel};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<Complex64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..rows * cols)
        .map(|_| {
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            c64(next(), next())
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[8usize, 32, 64, 128] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        let mut out = vec![Complex64::ZERO; n * n];
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, &n| {
            bch.iter(|| gemm_serial(n, n, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, &n| {
            bch.iter(|| gemm_parallel(n, n, n, &a, &b, &mut out));
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for &n in &[8usize, 24, 48, 96] {
        let a = random_matrix(n, n, 3);
        group.bench_with_input(BenchmarkId::new("jacobi_serial", n), &n, |bch, &n| {
            bch.iter(|| svd(n, n, &a));
        });
        group.bench_with_input(BenchmarkId::new("jacobi_parallel", n), &n, |bch, &n| {
            bch.iter(|| svd_parallel(n, n, &a));
        });
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    for &n in &[16usize, 64, 128] {
        let a = random_matrix(n, n, 4);
        group.bench_with_input(BenchmarkId::new("householder", n), &n, |bch, &n| {
            bch.iter(|| qk_tensor::qr::qr(n, n, &a));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_svd, bench_qr);
criterion_main!(benches);
