//! Shared harness infrastructure for the per-figure benchmark binaries.
//!
//! Every binary accepts `--scale ci|default|paper` plus experiment-specific
//! overrides, prints the paper's rows/series to stdout, and writes a JSON
//! record under `results/` so plots can be regenerated offline. "paper"
//! scale uses the manuscript's exact parameters (slow without cluster
//! hardware); "default" reproduces each figure's *shape* at laptop scale;
//! "ci" is a smoke test.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

pub mod schema;

/// Harness scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-level smoke test.
    Ci,
    /// Laptop-scale shape reproduction (the default).
    Default,
    /// The manuscript's exact parameters (requires serious hardware).
    Paper,
}

impl Scale {
    /// Parses a `--scale` value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "ci" => Some(Scale::Ci),
            "default" => Some(Scale::Default),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Minimal command-line parser: `--key value` pairs plus bare `--flag`
/// booleans (a `--key` followed by another `--…` token or the end of
/// the line records as the flag value `true`).
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args`, panicking on malformed input.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1).collect())
    }

    fn parse(raw: Vec<String>) -> Args {
        let mut pairs = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, found {key}"))
                .to_string();
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap(),
                _ => "true".to_string(),
            };
            pairs.push((key, value));
        }
        Args { pairs }
    }

    /// `true` when `--key` was passed bare or with a truthy value.
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Looks up a raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The scale preset (default: `Scale::Default`).
    pub fn scale(&self) -> Scale {
        self.get("scale")
            .map(|s| Scale::parse(s).unwrap_or_else(|| panic!("unknown scale {s}")))
            .unwrap_or(Scale::Default)
    }

    /// Typed lookup with a fallback.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|e| panic!("bad --{key}: {e:?}")))
            .unwrap_or(default)
    }
}

/// Writes a serializable record to `<dir>/<name>.json`, where `<dir>`
/// is `$QK_RESULTS_DIR` if set, else `results/` under the current
/// directory (best effort; the harness still succeeds if the directory
/// is unwritable). CI points `QK_RESULTS_DIR` at a scratch directory so
/// fresh runs never clobber the committed baselines they are compared
/// against.
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    let dir = std::env::var_os("QK_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if std::fs::write(&path, json).is_ok() {
                eprintln!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("[failed to serialize results: {e}]"),
    }
}

/// Merges the per-rank trace shards in `dir` (written by
/// [`qk_obs::Tracer::write_shards`]), exports the Chrome trace-event
/// file as `dir/<chrome>` and the analyzer summary as `dir/<report>`,
/// and returns the analysis. The merge is canonical `(rank, lane, seq)`
/// order, so the result is identical however the shards were produced
/// or listed.
pub fn export_trace(
    dir: &std::path::Path,
    chrome: &str,
    report: &str,
) -> std::io::Result<qk_obs::TraceAnalysis> {
    let events = qk_obs::trace::read_shards(dir)?;
    qk_obs::trace::write_chrome_trace(&dir.join(chrome), &events)?;
    let analysis = qk_obs::trace::analyze(&events);
    analysis.write_json(&dir.join(report))?;
    Ok(analysis)
}

/// Deterministic sample rows drawn from the synthetic elliptic-like
/// distribution, preprocessed into the `(0, 2)` feature-map domain.
pub fn sample_rows(count: usize, features: usize, seed: u64) -> Vec<Vec<f64>> {
    use qk_data::{generate, prepare_experiment, SyntheticConfig};
    let n = (count + 8).next_multiple_of(2).max(10);
    let data = generate(&SyntheticConfig {
        num_features: features,
        num_illicit: n,
        num_licit: n,
        latent_dim: 6,
        noise: 2.0,
        seed,
    });
    let split = prepare_experiment(&data, 2 * n, features, seed);
    split.train.features.into_iter().take(count).collect()
}

/// Median of a duration sample (empty-safe).
pub fn median(mut xs: Vec<Duration>) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.sort();
    xs[xs.len() / 2]
}

/// First and third quartiles of a duration sample.
pub fn quartiles(mut xs: Vec<Duration>) -> (Duration, Duration) {
    if xs.is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    xs.sort();
    (xs[xs.len() / 4], xs[(3 * xs.len()) / 4])
}

/// Mean of an f64 sample (empty-safe).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("ci"), Some(Scale::Ci));
        assert_eq!(Scale::parse("DEFAULT"), Some(Scale::Default));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn args_parse_pairs_and_flags() {
        let args = Args::parse(
            ["--scale", "ci", "--smoke", "--workers", "4", "--fast"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(args.scale(), Scale::Ci);
        assert!(args.flag("smoke"));
        assert!(args.flag("fast"));
        assert!(!args.flag("absent"));
        assert_eq!(args.get_or("workers", 0usize), 4);
        // Negative numbers are values, not flags.
        let neg = Args::parse(vec!["--shift".into(), "-3".into()]);
        assert_eq!(neg.get_or("shift", 0i64), -3);
    }

    #[test]
    fn sample_rows_in_domain() {
        let rows = sample_rows(12, 8, 3);
        assert_eq!(rows.len(), 12);
        for row in &rows {
            assert_eq!(row.len(), 8);
            assert!(row.iter().all(|&x| (0.0..=2.0).contains(&x)));
        }
        // Deterministic.
        assert_eq!(rows, sample_rows(12, 8, 3));
    }

    #[test]
    fn median_and_quartiles() {
        let xs: Vec<Duration> = [5, 1, 3, 2, 4]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .collect();
        assert_eq!(median(xs.clone()), Duration::from_secs(3));
        let (q1, q3) = quartiles(xs);
        assert_eq!(q1, Duration::from_secs(2));
        assert_eq!(q3, Duration::from_secs(4));
        assert_eq!(median(vec![]), Duration::ZERO);
    }

    #[test]
    fn mean_empty_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
