//! Versioned benchmark-result schema and regression comparison.
//!
//! Every harness binary emits a `BENCH_<name>.json` envelope:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "meta": { "bench": "...", "git_rev": "...", "scale": "...",
//!             "n": 0, "chi": 0, "tile": 0, "workers": 0, "ranks": 0 },
//!   "metrics": { "<name>": { "value": 0.0, "tol_rel": 0.0,
//!                            "direction": "higher" } }
//! }
//! ```
//!
//! The **committed baseline carries the contract**: its `tol_rel` and
//! `direction` decide what a regression is, so tightening or widening a
//! gate is a reviewed change to the baseline file, never a CI-side
//! knob. [`compare`] checks a fresh result against a baseline:
//!
//! * `higher` — fresh ≥ baseline × (1 − tol): throughput-like ratios
//!   where only a drop is a regression (improvements always pass);
//! * `lower`  — fresh ≤ baseline × (1 + tol): latency-like values;
//! * `exact`  — fresh == baseline bit-for-bit: structural counts
//!   (tiles, inner products) covered by the determinism contract;
//! * `info`   — recorded for humans and plots, never gated (absolute
//!   wall times mean nothing across heterogeneous CI hosts).
//!
//! A gated baseline metric missing from the fresh run fails the
//! comparison — silently dropping a metric must not pass the gate.

use qk_obs::json::{self, Json};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Version of the `BENCH_*.json` envelope this crate reads and writes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Regression polarity of one metric. Stored on the wire as a
/// lowercase string (`higher` / `lower` / `exact` / `info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better; only a drop beyond tolerance is a regression.
    Higher,
    /// Smaller is better; only a rise beyond tolerance is a regression.
    Lower,
    /// Must match the baseline bit-for-bit (deterministic counts).
    Exact,
    /// Recorded but never gated.
    Info,
}

impl Direction {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
            Direction::Exact => "exact",
            Direction::Info => "info",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            "exact" => Some(Direction::Exact),
            "info" => Some(Direction::Info),
            _ => None,
        }
    }
}

impl Serialize for Direction {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

/// Provenance of one benchmark run. Zero means "not applicable" for
/// the dimension fields.
#[derive(Debug, Clone, Serialize)]
pub struct BenchMeta {
    /// Benchmark name (matches the `BENCH_<name>.json` file stem).
    pub bench: String,
    /// `git rev-parse --short HEAD` at run time (`unknown` outside a
    /// work tree).
    pub git_rev: String,
    /// Harness scale preset the run used.
    pub scale: String,
    /// Problem size (points / requests).
    pub n: usize,
    /// Bond dimension, when the bench sweeps one.
    pub chi: usize,
    /// Tile edge, for tiled-engine benches.
    pub tile: usize,
    /// Worker threads.
    pub workers: usize,
    /// Simulated MPI ranks.
    pub ranks: usize,
}

impl BenchMeta {
    /// Meta for `bench` at `scale` with every dimension zeroed; set the
    /// ones that apply.
    pub fn new(bench: &str, scale: &str) -> BenchMeta {
        BenchMeta {
            bench: bench.to_string(),
            git_rev: git_rev(),
            scale: scale.to_string(),
            n: 0,
            chi: 0,
            tile: 0,
            workers: 0,
            ranks: 0,
        }
    }
}

/// One measured value plus its regression contract.
#[derive(Debug, Clone, Serialize)]
pub struct Metric {
    /// The measurement.
    pub value: f64,
    /// Relative tolerance for `higher`/`lower` gating (ignored for
    /// `exact` and `info`).
    pub tol_rel: f64,
    /// Gating polarity.
    pub direction: Direction,
}

/// A complete versioned benchmark result.
#[derive(Debug, Clone, Serialize)]
pub struct BenchResult {
    /// Envelope version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Run provenance.
    pub meta: BenchMeta,
    /// Named metrics, sorted (BTreeMap) so the file is diffable.
    pub metrics: BTreeMap<String, Metric>,
}

impl BenchResult {
    /// An empty result envelope for `meta`.
    pub fn new(meta: BenchMeta) -> BenchResult {
        BenchResult {
            schema_version: BENCH_SCHEMA_VERSION,
            meta,
            metrics: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a metric.
    pub fn metric(&mut self, name: &str, value: f64, tol_rel: f64, direction: Direction) {
        self.metrics.insert(
            name.to_string(),
            Metric {
                value,
                tol_rel,
                direction,
            },
        );
    }

    /// Convenience: an ungated, tolerance-free informational metric.
    pub fn info(&mut self, name: &str, value: f64) {
        self.metric(name, value, 0.0, Direction::Info);
    }

    /// Writes `BENCH_<bench>.json` via [`crate::write_results`]
    /// (honoring `QK_RESULTS_DIR`).
    pub fn write(&self) {
        crate::write_results(&format!("BENCH_{}", self.meta.bench), self);
    }

    /// Parses an envelope previously written by [`BenchResult::write`].
    pub fn from_json_str(src: &str) -> Result<BenchResult, String> {
        let root = json::parse(src).map_err(|e| format!("invalid JSON: {e}"))?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} (this tool reads {BENCH_SCHEMA_VERSION})"
            ));
        }
        let meta = root.get("meta").ok_or("missing meta")?;
        let str_field = |key: &str| -> Result<String, String> {
            meta.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("meta.{key} missing or not a string"))
        };
        let dim_field = |key: &str| -> Result<usize, String> {
            meta.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("meta.{key} missing or not an integer"))
        };
        let meta = BenchMeta {
            bench: str_field("bench")?,
            git_rev: str_field("git_rev")?,
            scale: str_field("scale")?,
            n: dim_field("n")?,
            chi: dim_field("chi")?,
            tile: dim_field("tile")?,
            workers: dim_field("workers")?,
            ranks: dim_field("ranks")?,
        };
        let mut metrics = BTreeMap::new();
        let raw = root
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or("missing metrics object")?;
        for (name, m) in raw {
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric {name}: value missing or not a number"))?;
            let tol_rel = m
                .get("tol_rel")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric {name}: tol_rel missing or not a number"))?;
            let direction = m
                .get("direction")
                .and_then(Json::as_str)
                .and_then(Direction::parse)
                .ok_or_else(|| format!("metric {name}: unknown direction"))?;
            metrics.insert(
                name.clone(),
                Metric {
                    value,
                    tol_rel,
                    direction,
                },
            );
        }
        Ok(BenchResult {
            schema_version: version,
            meta,
            metrics,
        })
    }

    /// Reads and parses an envelope file.
    pub fn read(path: &Path) -> Result<BenchResult, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json_str(&src).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Verdict for one gated metric.
#[derive(Debug, Clone)]
pub struct MetricCheck {
    /// Metric name.
    pub name: String,
    /// Baseline value (the contract side).
    pub baseline: f64,
    /// Fresh value, `None` when the fresh run lacks the metric.
    pub fresh: Option<f64>,
    /// Contract polarity (from the baseline).
    pub direction: Direction,
    /// Contract tolerance (from the baseline).
    pub tol_rel: f64,
    /// `true` when this metric passes its contract.
    pub ok: bool,
}

/// Outcome of comparing a fresh result against a committed baseline.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Every gated (non-`info`) baseline metric, in name order.
    pub checks: Vec<MetricCheck>,
}

impl CompareReport {
    /// `true` when every gated metric passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The failing checks.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricCheck> {
        self.checks.iter().filter(|c| !c.ok)
    }
}

impl fmt::Display for CompareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.checks {
            let verdict = if c.ok { "ok  " } else { "FAIL" };
            match c.fresh {
                Some(fresh) => writeln!(
                    f,
                    "{verdict} {:<40} {:>14.6} -> {:>14.6}  ({}, tol {:.0}%)",
                    c.name,
                    c.baseline,
                    fresh,
                    c.direction.as_str(),
                    100.0 * c.tol_rel
                )?,
                None => writeln!(
                    f,
                    "{verdict} {:<40} {:>14.6} -> <missing>      ({})",
                    c.name,
                    c.baseline,
                    c.direction.as_str()
                )?,
            }
        }
        write!(
            f,
            "{} gated metrics, {} regression(s)",
            self.checks.len(),
            self.regressions().count()
        )
    }
}

/// Compares `fresh` against `baseline`. The baseline's `tol_rel` and
/// `direction` are the contract; the fresh run's annotations are
/// ignored. `info` metrics are skipped; a gated baseline metric the
/// fresh run lacks fails.
pub fn compare(baseline: &BenchResult, fresh: &BenchResult) -> CompareReport {
    let mut checks = Vec::new();
    for (name, b) in &baseline.metrics {
        if b.direction == Direction::Info {
            continue;
        }
        let fresh_value = fresh.metrics.get(name).map(|m| m.value);
        let ok = match fresh_value {
            None => false,
            Some(v) => match b.direction {
                Direction::Higher => v >= b.value * (1.0 - b.tol_rel),
                Direction::Lower => v <= b.value * (1.0 + b.tol_rel),
                Direction::Exact => v == b.value,
                Direction::Info => unreachable!("info metrics are skipped"),
            },
        };
        checks.push(MetricCheck {
            name: name.clone(),
            baseline: b.value,
            fresh: fresh_value,
            direction: b.direction,
            tol_rel: b.tol_rel,
            ok,
        });
    }
    CompareReport { checks }
}

/// Degrades every gated metric of `result` by `factor` (< 1), in the
/// direction that makes it worse: `higher` metrics shrink, `lower`
/// metrics grow, `exact` metrics shift by one. The `bench_compare`
/// `--inject-regression` self-test uses this to prove the gate trips.
pub fn inject_regression(result: &mut BenchResult, factor: f64) {
    for m in result.metrics.values_mut() {
        match m.direction {
            Direction::Higher => m.value *= factor,
            Direction::Lower => m.value /= factor.max(1e-12),
            Direction::Exact => m.value += 1.0,
            Direction::Info => {}
        }
    }
}

/// Short git revision of the working tree, or `unknown`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchResult {
        let mut r = BenchResult::new(BenchMeta::new("unit", "ci"));
        r.metric("speedup", 3.3, 0.45, Direction::Higher);
        r.metric("p99_us", 900.0, 0.5, Direction::Lower);
        r.metric("tiles_total", 21.0, 0.0, Direction::Exact);
        r.info("wall_us", 123456.0);
        r
    }

    #[test]
    fn roundtrips_through_json() {
        let r = sample();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back = BenchResult::from_json_str(&json).unwrap();
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(back.meta.bench, "unit");
        assert_eq!(back.metrics.len(), 4);
        assert_eq!(back.metrics["speedup"].value, 3.3);
        assert_eq!(back.metrics["speedup"].direction, Direction::Higher);
        assert_eq!(back.metrics["wall_us"].direction, Direction::Info);
    }

    #[test]
    fn identical_results_pass() {
        let r = sample();
        let report = compare(&r, &r);
        assert!(report.passed(), "{report}");
        // info metrics are not gated.
        assert_eq!(report.checks.len(), 3);
    }

    #[test]
    fn improvements_pass() {
        let base = sample();
        let mut fresh = sample();
        fresh.metrics.get_mut("speedup").unwrap().value = 5.0;
        fresh.metrics.get_mut("p99_us").unwrap().value = 400.0;
        assert!(compare(&base, &fresh).passed());
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let base = sample();
        let mut fresh = sample();
        // 3.3 * (1 - 0.45) = 1.815 is the floor.
        fresh.metrics.get_mut("speedup").unwrap().value = 1.9;
        assert!(compare(&base, &fresh).passed());
        fresh.metrics.get_mut("speedup").unwrap().value = 1.7;
        let report = compare(&base, &fresh);
        assert!(!report.passed());
        assert_eq!(report.regressions().count(), 1);
        assert!(format!("{report}").contains("FAIL"));
    }

    #[test]
    fn exact_metrics_reject_any_drift() {
        let base = sample();
        let mut fresh = sample();
        fresh.metrics.get_mut("tiles_total").unwrap().value = 22.0;
        assert!(!compare(&base, &fresh).passed());
    }

    #[test]
    fn missing_gated_metric_fails_missing_info_does_not() {
        let base = sample();
        let mut fresh = sample();
        fresh.metrics.remove("wall_us");
        assert!(compare(&base, &fresh).passed());
        fresh.metrics.remove("p99_us");
        let report = compare(&base, &fresh);
        assert!(!report.passed());
        let miss = report.regressions().next().unwrap();
        assert_eq!(miss.name, "p99_us");
        assert!(miss.fresh.is_none());
    }

    #[test]
    fn fresh_annotations_do_not_weaken_the_contract() {
        let base = sample();
        let mut fresh = sample();
        // A fresh run claiming a huge tolerance must not bypass the
        // baseline's contract.
        {
            let m = fresh.metrics.get_mut("speedup").unwrap();
            m.value = 0.5;
            m.tol_rel = 100.0;
            m.direction = Direction::Info;
        }
        assert!(!compare(&base, &fresh).passed());
    }

    #[test]
    fn injected_regression_trips_every_gate_class() {
        let base = sample();
        let mut fresh = sample();
        inject_regression(&mut fresh, 0.25);
        let report = compare(&base, &fresh);
        assert_eq!(report.regressions().count(), 3);
        // info metrics are untouched.
        assert_eq!(fresh.metrics["wall_us"].value, 123456.0);
    }

    #[test]
    fn version_and_shape_errors_are_reported() {
        assert!(BenchResult::from_json_str("not json").is_err());
        assert!(BenchResult::from_json_str("{\"schema_version\": 99}")
            .unwrap_err()
            .contains("schema_version 99"));
        let r = sample();
        let mut json = serde_json::to_string(&r).unwrap();
        json = json.replace("\"higher\"", "\"sideways\"");
        assert!(BenchResult::from_json_str(&json)
            .unwrap_err()
            .contains("unknown direction"));
    }

    #[test]
    fn direction_wire_names_roundtrip() {
        for d in [
            Direction::Higher,
            Direction::Lower,
            Direction::Exact,
            Direction::Info,
        ] {
            assert_eq!(Direction::parse(d.as_str()), Some(d));
        }
        assert_eq!(Direction::parse("bogus"), None);
    }
}
