//! Figure 7: simulation time vs number of qubits (features), for several
//! values of the kernel bandwidth gamma.
//!
//! The asymptotic cost is O(m chi^3), but chi itself depends on m and on
//! gamma; the paper highlights that gamma = 0.5 is the most expensive of
//! {0.1, 0.5, 1.0} because its RXX angles generate the strongest
//! entanglement.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin fig7_qubit_scaling -- \
//!     [--scale ci|default|paper] [--distance D] [--samples K]

use qk_bench::{mean, sample_rows, write_results, Args, Scale};
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::{MpsSimulator, TruncationConfig};
use qk_tensor::backend::CpuBackend;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    qubits: usize,
    gamma: f64,
    mean_sim_seconds: f64,
    mean_inner_seconds: f64,
    mean_largest_chi: f64,
}

fn main() {
    let args = Args::from_env();
    // Paper: d = 6, r = 2, m in 25..=165, gammas {0.1, 0.5, 1.0}, 8 samples.
    let (qubit_grid, distance, samples): (Vec<usize>, usize, usize) = match args.scale() {
        Scale::Ci => (vec![6, 10, 14], 2, 2),
        Scale::Default => (vec![10, 20, 30, 40], 3, 2),
        Scale::Paper => (vec![25, 50, 75, 100, 125, 150, 165], 6, 8),
    };
    let distance = args.get_or("distance", distance);
    let samples = args.get_or("samples", samples);
    let gammas = [0.1f64, 0.5, 1.0];

    let backend = CpuBackend::new();
    println!("Fig. 7: simulation time vs qubits (d = {distance}, r = 2)");
    println!("paper shape: manageable growth with m; gamma = 0.5 is the most");
    println!("expensive because intermediate angles entangle hardest\n");
    println!(
        "{:>7} | {:>22} | {:>22} | {:>22}",
        "qubits", "gamma=0.1 (s) [chi]", "gamma=0.5 (s) [chi]", "gamma=1.0 (s) [chi]"
    );

    let mut points = Vec::new();
    for &m in &qubit_grid {
        let mut cells = Vec::new();
        for &gamma in &gammas {
            let cfg = AnsatzConfig::new(2, distance.min(m - 1), gamma);
            let sim = MpsSimulator::new(&backend).with_truncation(TruncationConfig::default());
            let rows = sample_rows(samples + 1, m, 31);
            let mut sim_secs = Vec::new();
            let mut chi = Vec::new();
            let mut states = Vec::new();
            for row in &rows {
                let circuit = feature_map_circuit(row, &cfg);
                let t0 = Instant::now();
                let (mps, _) = sim.simulate(&circuit);
                sim_secs.push(t0.elapsed().as_secs_f64());
                chi.push(mps.max_bond() as f64);
                states.push(mps);
            }
            // Inner-product scaling shares the O(m chi^3) law; time a few.
            let mut inner_secs = Vec::new();
            for pair in states.windows(2) {
                let t0 = Instant::now();
                let _ = pair[0].inner_with(&backend, &pair[1]);
                inner_secs.push(t0.elapsed().as_secs_f64());
            }
            let p = Point {
                qubits: m,
                gamma,
                mean_sim_seconds: mean(&sim_secs),
                mean_inner_seconds: mean(&inner_secs),
                mean_largest_chi: mean(&chi),
            };
            cells.push(format!(
                "{:>12.4} [{:>5.1}]",
                p.mean_sim_seconds, p.mean_largest_chi
            ));
            points.push(p);
        }
        println!(
            "{:>7} | {:>22} | {:>22} | {:>22}",
            m, cells[0], cells[1], cells[2]
        );
    }

    // Shape check: gamma = 0.5 at the largest m should be the slowest.
    let largest = *qubit_grid.last().unwrap();
    let at_largest: Vec<&Point> = points.iter().filter(|p| p.qubits == largest).collect();
    if let Some(max_p) = at_largest
        .iter()
        .max_by(|a, b| a.mean_sim_seconds.partial_cmp(&b.mean_sim_seconds).unwrap())
    {
        println!(
            "\nslowest gamma at m = {largest}: {} (paper: 0.5)",
            max_p.gamma
        );
    }
    write_results("fig7_qubit_scaling", &points);
}
