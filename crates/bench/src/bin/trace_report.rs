//! Offline trace analyzer: merge per-rank trace shards into a Chrome
//! trace and a utilization/critical-path summary.
//!
//! Reads every `trace_rank_<r>.jsonl` shard in `--trace-dir` (written
//! by `qk_obs::Tracer::write_shards` — the `gram_scale` and
//! `serve_throughput` harnesses produce them under `--trace-dir`),
//! merges them in the canonical `(rank, lane, seq)` order, and writes:
//!
//! * `trace_gram.json` — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or Perfetto (`--chrome NAME` overrides);
//! * `trace_report.json` — per-rank/per-lane utilization, stall and
//!   steal time, per-phase totals, the critical path through the tile
//!   timeline, and scaling efficiency vs. rank count (`--report NAME`
//!   overrides).
//!
//! The merge and the analysis are deterministic functions of the shard
//! contents: re-running over the same shards — in any discovery order —
//! reproduces both outputs byte for byte.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin trace_report -- \
//!     --trace-dir DIR [--chrome trace_gram.json] \
//!     [--report trace_report.json]

use qk_bench::{export_trace, Args};
use std::path::PathBuf;

fn main() {
    let args = Args::from_env();
    let dir = PathBuf::from(args.get("trace-dir").expect("--trace-dir DIR required"));
    let chrome = args.get("chrome").unwrap_or("trace_gram.json");
    let report = args.get("report").unwrap_or("trace_report.json");
    match export_trace(&dir, chrome, report) {
        Ok(analysis) => {
            println!("{analysis}");
            eprintln!(
                "[chrome trace: {}; summary: {}]",
                dir.join(chrome).display(),
                dir.join(report).display()
            );
        }
        Err(e) => {
            eprintln!("trace_report: {e}");
            std::process::exit(2);
        }
    }
}
