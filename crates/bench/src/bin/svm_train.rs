//! Crash-safe SVM training smoke harness: the CI kill-and-resume and
//! chaos drills for `qk_svm::Trainer` drive this bin.
//!
//! The smoke builds a small quantum-kernel problem end to end — sampled
//! feature rows, MPS simulation, tiled Gram assembly — then trains a
//! C-SVC through the checkpointed trainer over a
//! `qk_gram::RecomputingRows` source, so persistently failing row loads
//! degrade to bitwise-identical recomputation instead of aborting.
//!
//! A fresh run wipes the checkpoint directory first; `--resume` keeps
//! it, so a SIGKILLed run warm-starts from its last stored snapshot.
//! `--out FILE` writes the model bytes (pass count, bias, then every
//! alpha, all little-endian), which CI `cmp`s between a killed+resumed
//! run and a clean run — they must be identical.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin svm_train -- --smoke \
//!     [--n N] [--features M] [--tile T] [--c C] \
//!     [--ckpt-dir DIR] [--ckpt-every K] [--resume] \
//!     [--throttle-ms T] [--cache-budget-kb B] [--pass-budget P] \
//!     [--chaos SPEC] [--chaos-seed S] [--out FILE] [--obs-dir DIR]
//!
//! `--chaos SPEC` arms a seeded fault plan over the trainer's sites
//! (`svm.ckpt.store`, `svm.ckpt.load`, `svm.row.load`) in
//! `qk_chaos::FaultPlan::parse` grammar, e.g.
//! `svm.ckpt.store=io@first:2,svm.row.load=io@first:5`. Exit code 3
//! means the pass budget interrupted training (re-run with `--resume`);
//! the stdout report always ends with the trainer's obs report, whose
//! `robustness:` section carries the recovery counters CI asserts on.

use qk_bench::schema::{BenchMeta, BenchResult, Direction};
use qk_bench::{sample_rows, Args};
use qk_chaos::{Chaos, FaultPlan};
use qk_circuit::AnsatzConfig;
use qk_core::simulate_states;
use qk_gram::{encoding_fingerprint, GramConfig, GramEngine, RecomputingRows};
use qk_mps::TruncationConfig;
use qk_obs::Obs;
use qk_svm::{SmoParams, TrainError, Trainer, TrainerConfig};
use qk_tensor::backend::CpuBackend;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    if !args.flag("smoke") {
        eprintln!("svm_train only has a smoke mode; pass --smoke");
        std::process::exit(2);
    }
    smoke(&args);
}

/// Deterministic noisy labels: a nonlinear rule over the first two
/// features with a seeded flip of roughly one point in seven, so the
/// problem is not cleanly separable and training takes several passes —
/// enough runway for the CI drill to SIGKILL mid-flight.
fn label_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            let rule = if r[0] * r[1] > 0.25 { 1.0 } else { -1.0 };
            if (i * 31 + 7) % 7 == 0 {
                -rule
            } else {
                rule
            }
        })
        .collect()
}

fn smoke(args: &Args) {
    let n = args.get_or("n", 32usize);
    let features = args.get_or("features", 4usize);
    let tile = args.get_or("tile", 8usize);
    let c = args.get_or("c", 2.0f64);
    let dir = PathBuf::from(args.get("ckpt-dir").unwrap_or("results/svm_train_ckpt"));
    let resume = args.flag("resume");
    if !resume && dir.exists() {
        std::fs::remove_dir_all(&dir).expect("wiping stale checkpoint dir");
    }

    let chaos = match args.get("chaos") {
        None => Chaos::disarmed(),
        Some(spec) => {
            let seed = args.get_or("chaos-seed", 0u64);
            FaultPlan::parse(seed, spec)
                .unwrap_or_else(|e| panic!("bad --chaos: {e}"))
                .arm()
        }
    };

    // Build the kernel the same way every invocation: the trainer's
    // bitwise-resume contract needs identical inputs across runs.
    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let be = CpuBackend::new();
    let rows = sample_rows(n, features, 23);
    let labels = label_rows(&rows);
    let states = simulate_states(&rows, &ansatz, &be, &trunc).states;
    let out = GramEngine::new(GramConfig::in_memory(tile))
        .compute_gram(&states, &be)
        .expect("in-memory gram assembly cannot fail");
    let kernel = out.kernel;
    let source = RecomputingRows::new(&kernel, &states, &be);

    let obs = Obs::new();
    let cfg = TrainerConfig {
        ckpt_dir: Some(dir),
        ckpt_every: args.get_or("ckpt-every", 1usize),
        cache_budget: match args.get_or("cache-budget-kb", 0usize) {
            0 => None,
            kb => Some(kb * 1024),
        },
        kernel_fingerprint: encoding_fingerprint(&ansatz, &trunc),
        chaos,
        obs: Some(obs.clone()),
        obs_dir: args.get("obs-dir").map(PathBuf::from),
        throttle: match args.get_or("throttle-ms", 0u64) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        pass_budget: match args.get_or("pass-budget", 0usize) {
            0 => None,
            p => Some(p),
        },
        ..TrainerConfig::default()
    };
    let params = SmoParams::with_c(c);
    let outcome = match Trainer::new(cfg).train(&source, &labels, &params) {
        Ok(outcome) => outcome,
        Err(TrainError::Interrupted { passes }) => {
            eprintln!("interrupted after {passes} passes; re-run with --resume");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("svm training failed: {e}");
            std::process::exit(1);
        }
    };
    let model = &outcome.model;
    let stats = &outcome.stats;
    println!(
        "svm_train smoke: n={n} features={features} c={c} resume={resume}\n\
         passes={} support_vectors={} degraded={}\n\
         resumed_from_pass={}",
        model.passes,
        model.support_indices().len(),
        stats.degraded,
        outcome.resumed_from_pass.map_or(-1, |p| p as i64),
    );
    // The robustness section of this report is what the CI chaos drill
    // greps for nonzero recovery counters.
    println!("{}", obs.report("svm"));

    if let Some(path) = args.get("out") {
        let mut bytes = Vec::with_capacity(16 + model.alphas.len() * 8);
        bytes.extend_from_slice(&(model.passes as u64).to_le_bytes());
        bytes.extend_from_slice(&model.bias.to_bits().to_le_bytes());
        for a in &model.alphas {
            bytes.extend_from_slice(&a.to_bits().to_le_bytes());
        }
        let mut f = std::fs::File::create(path).expect("creating --out file");
        f.write_all(&bytes).expect("writing --out file");
        eprintln!("[model bytes written to {path}]");
    }

    let mut meta = BenchMeta::new("svm_train_smoke", "smoke");
    meta.n = n;
    meta.tile = tile;
    let mut result = BenchResult::new(meta);
    // Pass count and support-vector count are covered by the bitwise
    // determinism contract: any clean smoke at fixed inputs must
    // reproduce them exactly, resumed or not.
    result.metric("passes", model.passes as f64, 0.0, Direction::Exact);
    result.metric(
        "support_vectors",
        model.support_indices().len() as f64,
        0.0,
        Direction::Exact,
    );
    // Cache and recovery activity depend on the chaos plan and resume
    // history, so they are informational.
    result.info("cache_hits", stats.cache_hits as f64);
    result.info("cache_misses", stats.cache_misses as f64);
    result.info("cache_evictions", stats.cache_evictions as f64);
    result.info("rows_recomputed", stats.rows_recomputed as f64);
    result.info("ckpt_retries", stats.ckpt_retries as f64);
    result.info("ckpt_stores", stats.ckpt_stores as f64);
    result.info("faults_injected", stats.faults_injected as f64);
    result.info("degraded", u64::from(stats.degraded) as f64);
    result.write();
}
