//! Table III: effect of circuit depth (ansatz repetitions `r`) on SVM
//! performance, at d = 1 and gamma = 1.
//!
//! Expected shape: beyond a shallow optimum, more repetitions concentrate
//! the kernel (off-diagonal entries collapse toward zero) and test
//! performance degrades while recall saturates at 1.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin table3_depth_sweep -- \
//!     [--scale ci|default|paper] [--features M] [--samples N] [--runs R] [--gamma G]
//!
//! The paper uses gamma = 1 at 50 features; at reduced feature counts the
//! same effective bandwidth (which scales like m * gamma^2) needs a
//! smaller gamma, otherwise the kernel is concentrated already at depth 2
//! and the depth trend is invisible. The default-scale gamma is chosen
//! accordingly.

use qk_bench::{write_results, Args, Scale};
use qk_circuit::AnsatzConfig;
use qk_core::gram::gram_matrix;
use qk_core::pipeline::{run_quantum_on_split, ExperimentConfig};
use qk_core::states::simulate_states;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_svm::{concentration_report, Metrics};
use qk_tensor::backend::CpuBackend;
use serde::Serialize;

#[derive(Serialize)]
struct DepthRow {
    depth: usize,
    auc: f64,
    recall: f64,
    precision: f64,
    accuracy: f64,
    kernel_off_diag_mean: f64,
    /// Participation ratio of the kernel spectrum (→ n when concentrated).
    effective_dimension: f64,
    /// Kernel–target alignment (→ 1/√n when concentrated).
    alignment: f64,
}

fn best_averaged(all_runs: &[Vec<Metrics>]) -> Metrics {
    let grid_len = all_runs[0].len();
    let mut best: Option<Metrics> = None;
    for c_idx in 0..grid_len {
        let per_c: Vec<Metrics> = all_runs.iter().map(|run| run[c_idx]).collect();
        let avg = Metrics::mean(&per_c);
        if best.is_none_or(|b| avg.auc > b.auc) {
            best = Some(avg);
        }
    }
    best.unwrap()
}

fn main() {
    let args = Args::from_env();
    // Paper: 50 features, 400 samples, d = 1, gamma = 1,
    // depth in {2, 4, 8, 12, 16, 20}, 6 runs.
    let (features, samples, runs, depths, gamma): (usize, usize, usize, Vec<usize>, f64) =
        match args.scale() {
            Scale::Ci => (6, 40, 2, vec![2, 8], 0.3),
            Scale::Default => (10, 120, 3, vec![2, 4, 8, 12, 16, 20], 0.3),
            Scale::Paper => (50, 400, 6, vec![2, 4, 8, 12, 16, 20], 1.0),
        };
    let features = args.get_or("features", features);
    let samples = args.get_or("samples", samples);
    let runs = args.get_or("runs", runs);
    let gamma = args.get_or("gamma", gamma);

    let backend = CpuBackend::new();
    let dataset_cfg = SyntheticConfig {
        num_features: features,
        num_illicit: samples,
        num_licit: samples,
        latent_dim: 6,
        noise: 1.6,
        seed: 0,
    };
    let splits: Vec<_> = (0..runs)
        .map(|r| {
            let seed = 300 + r as u64;
            let data = generate(&SyntheticConfig {
                seed,
                ..dataset_cfg
            });
            prepare_experiment(&data, samples, features, seed)
        })
        .collect();

    println!("Table III: depth sweep ({features} features, {samples} samples, d = 1, gamma = {gamma}, {runs} runs)");
    println!("paper shape: shallow depth best; deep circuits concentrate the kernel");
    println!("and test AUC decays while recall saturates\n");
    println!(
        "{:>6} | {:>7} {:>7} {:>10} {:>9} {:>14} {:>8} {:>7}",
        "depth", "AUC", "recall", "precision", "accuracy", "K off-diag", "eff-dim", "align"
    );

    let mut rows = Vec::new();
    for &depth in &depths {
        let ansatz = AnsatzConfig::new(depth, 1, gamma);
        let per_run: Vec<Vec<Metrics>> = splits
            .iter()
            .enumerate()
            .map(|(r, split)| {
                let config = ExperimentConfig {
                    ansatz,
                    ..ExperimentConfig::qml(samples, features, 300 + r as u64)
                };
                run_quantum_on_split(split, &config, &backend)
                    .sweep
                    .points
                    .iter()
                    .map(|p| p.test)
                    .collect()
            })
            .collect();
        let m = best_averaged(&per_run);
        // Concentration diagnostic on the first run's training kernel.
        let batch = simulate_states(
            &splits[0].train.features,
            &ansatz,
            &backend,
            &TruncationConfig::default(),
        );
        let kernel = gram_matrix(&batch.states, &backend).kernel;
        let report = concentration_report(&kernel, &splits[0].train.label_signs());
        let off_diag = report.off_diagonal_mean;
        println!(
            "{:>6} | {:>7.3} {:>7.3} {:>10.3} {:>9.3} {:>14.4} {:>8.1} {:>7.3}",
            depth,
            m.auc,
            m.recall,
            m.precision,
            m.accuracy,
            off_diag,
            report.effective_dimension,
            report.alignment
        );
        rows.push(DepthRow {
            depth,
            auc: m.auc,
            recall: m.recall,
            precision: m.precision,
            accuracy: m.accuracy,
            kernel_off_diag_mean: off_diag,
            effective_dimension: report.effective_dimension,
            alignment: report.alignment,
        });
    }

    if rows.len() >= 2 {
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        println!(
            "\nAUC {:.3} -> {:.3} and off-diagonal kernel mean {:.4} -> {:.4} from depth {} to {}",
            first.auc,
            last.auc,
            first.kernel_off_diag_mean,
            last.kernel_off_diag_mean,
            first.depth,
            last.depth
        );
    }
    write_results("table3_depth_sweep", &rows);
}
