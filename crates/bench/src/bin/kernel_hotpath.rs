//! Inner-product hot-path harness: old (contract-based) vs new
//! (zero-allocation zipper) kernel across a bond-dimension sweep.
//!
//! For each χ it measures:
//!
//! * **single-pair, old path** — `Mps::inner_via_contract` dispatched
//!   through a backend running the pre-PR unblocked GEMM
//!   (`gemm_unblocked_reference`): exactly the code that computed every
//!   Gram entry before the zipper kernel landed;
//! * **single-pair, new path** — `Mps::inner_into` with a reused
//!   [`ZipperWorkspace`] over the blocked, register-tiled GEMM;
//! * **tile-batched, new path** — one workspace carried across a whole
//!   row of inner products, the way `qk-gram` tile workers and `qk-serve`
//!   batch workers run it.
//!
//! Every cell cross-checks the two paths to 1e-12 (relative); `--smoke`
//! runs a seconds-level sweep whose only job is that assertion (CI runs
//! it on every push). Results land in `results/BENCH_kernel.json`.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin kernel_hotpath -- \
//!     [--chis 8,16,32,64,128] [--batch 16] [--smoke]

use qk_bench::schema::{BenchMeta, BenchResult, Direction};
use qk_bench::Args;
use qk_mps::{Mps, ZipperWorkspace};
use qk_tensor::backend::{CpuBackend, ExecutionBackend};
use qk_tensor::complex::Complex64;
use qk_tensor::matrix::gemm_unblocked_reference;
use qk_tensor::svd::{svd, Svd};
use qk_tensor::tensor::Tensor;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The pre-PR CPU backend: serial unblocked GEMM with the per-element
/// zero check. `inner_via_contract` through this backend reproduces the
/// old inner-product path operation for operation.
struct PrePrBackend;

impl ExecutionBackend for PrePrBackend {
    fn name(&self) -> &'static str {
        "pre-pr-reference"
    }

    fn gemm(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[Complex64],
        b: &[Complex64],
        c: &mut [Complex64],
    ) {
        gemm_unblocked_reference(m, k, n, a, b, c);
    }

    fn svd(&self, m: usize, n: usize, a: &[Complex64]) -> Svd {
        svd(m, n, a)
    }
}

/// Deterministic random MPS with a maximal bond profile capped at `chi`
/// (bonds grow 1, 2, 4, … toward the center), so the center of the chain
/// genuinely runs χ x χ zipper steps.
fn random_state(qubits: usize, chi: usize, seed: u64) -> Mps {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let bond = |q: usize| -> usize {
        let left = 1usize << q.min(60);
        let right = 1usize << (qubits - q).min(60);
        left.min(right).min(chi)
    };
    let sites = (0..qubits)
        .map(|q| {
            let (l, r) = (bond(q), bond(q + 1));
            let data = (0..l * 2 * r)
                .map(|_| Complex64::new(next(), next()))
                .collect();
            Tensor::from_data(&[l, 2, r], data)
        })
        .collect();
    let mut mps = Mps::from_sites(sites);
    mps.normalize();
    mps
}

/// Enough qubits that ~4 interior bonds sit at the full χ.
fn qubits_for(chi: usize) -> usize {
    2 * chi.next_power_of_two().trailing_zeros() as usize + 4
}

/// Median-free adaptive timer: repeats `f` until `min_total` elapses
/// (max `max_reps`), returns time per call.
fn time_per_call<F: FnMut()>(mut f: F, min_total: Duration, max_reps: usize) -> Duration {
    f(); // warm-up (also grows workspaces/pack buffers)
    let t0 = Instant::now();
    let mut reps = 0u32;
    loop {
        f();
        reps += 1;
        if t0.elapsed() >= min_total || reps as usize >= max_reps {
            break;
        }
    }
    t0.elapsed() / reps
}

struct Row {
    chi: usize,
    old_single_ns: u64,
    new_single_ns: u64,
    single_speedup: f64,
    new_batched_ns_per_pair: u64,
    batched_speedup: f64,
    max_rel_dev: f64,
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let default_chis: &[usize] = if smoke {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let chis: Vec<usize> = match args.get("chis") {
        None => default_chis.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| s.trim().parse().expect("bad --chis"))
            .collect(),
    };
    let batch = args.get_or("batch", 16usize);
    let min_total = if smoke {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(400)
    };
    let max_reps = if smoke { 10 } else { 4000 };
    const TOL: f64 = 1e-12;

    let old_be = PrePrBackend;
    let new_be = CpuBackend::new();

    println!("kernel_hotpath: batch={batch} smoke={smoke}");
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>9} {:>14} {:>9} {:>10}",
        "chi", "qubits", "old/pair", "new/pair", "speedup", "batched/pair", "speedup", "max dev"
    );
    let mut rows = Vec::new();
    for &chi in &chis {
        let qubits = qubits_for(chi);
        let a = random_state(qubits, chi, 0xA5 + chi as u64);
        let b = random_state(qubits, chi, 0xB7 + chi as u64);
        let others: Vec<Mps> = (0..batch)
            .map(|i| random_state(qubits, chi, 0xC1 + (chi * 131 + i) as u64))
            .collect();

        // Correctness first: both paths agree on every pair this cell
        // will time (|z| is O(1) for normalized states, so the relative
        // scale is max(1, |old|)).
        let mut ws = ZipperWorkspace::new();
        let mut max_dev = 0.0f64;
        for other in others.iter().chain([&b]) {
            let old = a.inner_via_contract(&old_be, other);
            let new = a.inner_into(&mut ws, &new_be, other);
            let dev = (old - new).norm() / old.norm().max(1.0);
            max_dev = max_dev.max(dev);
        }
        assert!(
            max_dev <= TOL,
            "chi={chi}: new path deviates from reference by {max_dev:.3e} (tol {TOL:.0e})"
        );

        let old_single = time_per_call(
            || {
                black_box(a.inner_via_contract(&old_be, black_box(&b)));
            },
            min_total,
            max_reps,
        );
        let new_single = time_per_call(
            || {
                black_box(a.inner_into(&mut ws, &new_be, black_box(&b)));
            },
            min_total,
            max_reps,
        );
        let batched = time_per_call(
            || {
                for other in &others {
                    black_box(a.inner_into(&mut ws, &new_be, black_box(other)));
                }
            },
            min_total,
            max_reps,
        ) / batch as u32;

        let single_speedup = old_single.as_secs_f64() / new_single.as_secs_f64().max(1e-12);
        let batched_speedup = old_single.as_secs_f64() / batched.as_secs_f64().max(1e-12);
        println!(
            "{:>6} {:>7} {:>12.3?} {:>12.3?} {:>8.2}x {:>14.3?} {:>8.2}x {:>10.1e}",
            chi, qubits, old_single, new_single, single_speedup, batched, batched_speedup, max_dev
        );
        rows.push(Row {
            chi,
            old_single_ns: old_single.as_nanos() as u64,
            new_single_ns: new_single.as_nanos() as u64,
            single_speedup,
            new_batched_ns_per_pair: batched.as_nanos() as u64,
            batched_speedup,
            max_rel_dev: max_dev,
        });
    }

    if smoke {
        println!("kernel_hotpath smoke: new path matches the reference path on every cell");
        return;
    }
    let mut meta = BenchMeta::new("kernel", "timed");
    meta.n = batch;
    meta.chi = chis.iter().copied().max().unwrap_or(0);
    let mut result = BenchResult::new(meta);
    for row in &rows {
        let chi = row.chi;
        // The zipper rewrite's headline claim is the single-pair
        // speedup over the pre-PR path (~3x at real χ). χ ≥ 16 cells
        // time long enough to gate; the 45% tolerance rides out CI
        // noise yet trips long before a lost 3x (a regressed ratio sits
        // near 1). χ = 8 is sub-microsecond and stays informational.
        let gate = if chi >= 16 {
            Direction::Higher
        } else {
            Direction::Info
        };
        result.metric(
            &format!("single_speedup_chi{chi}"),
            row.single_speedup,
            0.45,
            gate,
        );
        result.info(&format!("batched_speedup_chi{chi}"), row.batched_speedup);
        result.info(&format!("old_single_ns_chi{chi}"), row.old_single_ns as f64);
        result.info(&format!("new_single_ns_chi{chi}"), row.new_single_ns as f64);
        result.info(
            &format!("new_batched_ns_chi{chi}"),
            row.new_batched_ns_per_pair as f64,
        );
        result.info(&format!("max_rel_dev_chi{chi}"), row.max_rel_dev);
    }
    result.write();
}
