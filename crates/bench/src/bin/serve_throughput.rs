//! Serving-layer throughput sweep: batch size x worker count.
//!
//! Drives a fixed duplicate-heavy request stream through `qk-serve` for
//! every (workers, max_batch) cell, reporting throughput, tail latency,
//! and cache hit rate. The expected shape on multi-core hardware:
//! throughput scales with workers until the core count, micro-batching
//! lifts it further under duplicate-heavy load (one simulation and one
//! kernel row amortize over the whole batch), and the cache turns
//! repeat traffic into pure inner-product work.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin serve_throughput -- \
//!     [--scale ci|default|paper] [--smoke] [--requests N] \
//!     [--features M] [--train N] [--pool P] [--obs-dir DIR] \
//!     [--trace-dir DIR]
//!
//! `--obs-dir DIR` exports observability artifacts there: each cell's
//! server appends lifecycle events to `serve_journal.jsonl` and the
//! final shutdown leaves `obs_serve.json` with span rollups.
//!
//! `--trace-dir DIR` records batch-granular timeline events (queue,
//! coalesce, encode, kernel, reply; lane = worker index) across every
//! cell, then writes the shard plus the merged Chrome trace-event file
//! `trace_serve.json` and the `trace_serve_report.json` summary.

use qk_bench::schema::{BenchMeta, BenchResult, Direction};
use qk_bench::{export_trace, sample_rows, Args, Scale};
use qk_circuit::AnsatzConfig;
use qk_core::QuantumKernelModel;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_obs::Tracer;
use qk_serve::{KernelServer, ServeConfig};
use qk_svm::SmoParams;
use qk_tensor::backend::CpuBackend;
use std::path::PathBuf;
use std::time::Duration;

struct Cell {
    workers: usize,
    max_batch: usize,
    throughput_rps: f64,
    p50: Duration,
    p99: Duration,
    mean_batch_size: f64,
    cache_hit_rate: f64,
    simulations: u64,
    completed: u64,
}

fn main() {
    let args = Args::from_env();
    let scale = if args.flag("smoke") {
        Scale::Ci
    } else {
        args.scale()
    };
    let (features, train, requests, pool, worker_grid, batch_grid): (
        usize,
        usize,
        usize,
        usize,
        &[usize],
        &[usize],
    ) = match scale {
        Scale::Ci => (4, 16, 64, 8, &[1, 2], &[1, 4]),
        Scale::Default => (8, 60, 1000, 50, &[1, 2, 4], &[1, 4, 8]),
        Scale::Paper => (16, 240, 5000, 200, &[1, 2, 4, 8], &[1, 4, 8, 16]),
    };
    let features = args.get_or("features", features);
    let train = args.get_or("train", train);
    let requests = args.get_or("requests", requests);
    let pool = args.get_or("pool", pool);
    let obs_dir = args.get("obs-dir").map(PathBuf::from);
    let trace_dir = args.get("trace-dir").map(PathBuf::from);
    if let Some(d) = &trace_dir {
        std::fs::create_dir_all(d).expect("creating --trace-dir");
    }
    let tracer = trace_dir.as_ref().map(|_| Tracer::new());

    // One trained model artifact, redeployed fresh per cell.
    let data = generate(&SyntheticConfig {
        num_features: features + 2,
        num_illicit: train,
        num_licit: train,
        latent_dim: 6,
        noise: 2.0,
        seed: 97,
    });
    let split = prepare_experiment(&data, train + train / 4, features, 97);
    let backend = CpuBackend::new();
    let artifact = QuantumKernelModel::fit(
        &split.train.features,
        &split.train.label_signs(),
        &AnsatzConfig::new(2, 1, 0.5),
        &TruncationConfig::default(),
        &SmoParams::with_c(1.0),
        &backend,
    )
    .to_bytes();
    let queries = sample_rows(pool, features, 101);

    println!(
        "serve_throughput: {} requests over a {}-point pool, model with {} retained states ({} features)",
        requests,
        pool,
        split.train.features.len(),
        features
    );
    println!(
        "\n{:>7} {:>9} | {:>12} {:>10} {:>10} {:>10} {:>9} {:>6}",
        "workers", "max_batch", "rps", "p50", "p99", "mean_bat", "hit_rate", "sims"
    );

    let mut cells = Vec::new();
    for &workers in worker_grid {
        for &max_batch in batch_grid {
            let server = KernelServer::start(
                QuantumKernelModel::from_bytes(&artifact),
                &ServeConfig {
                    workers,
                    max_batch,
                    max_wait: Duration::from_millis(1),
                    queue_capacity: 4 * workers * max_batch.max(8),
                    obs_dir: obs_dir.clone(),
                    trace: tracer.clone(),
                    ..ServeConfig::default()
                },
            );
            let handle = server.handle();
            let t0 = std::time::Instant::now();
            // Pipelined duplicate-heavy stream: step 7 walks the whole
            // pool while revisiting every point `requests / pool` times.
            let pending: Vec<_> = (0..requests)
                .map(|r| {
                    handle
                        .submit(queries[(r * 7) % queries.len()].clone())
                        .expect("accepted")
                })
                .collect();
            for p in pending {
                p.wait().expect("answered");
            }
            let wall = t0.elapsed();
            let snap = server.shutdown();
            let cell = Cell {
                workers,
                max_batch,
                throughput_rps: requests as f64 / wall.as_secs_f64().max(1e-9),
                p50: snap.latency.p50,
                p99: snap.latency.p99,
                mean_batch_size: snap.mean_batch_size,
                cache_hit_rate: snap.cache_hit_rate,
                simulations: snap.simulations,
                completed: snap.completed,
            };
            println!(
                "{:>7} {:>9} | {:>12.1} {:>10.2?} {:>10.2?} {:>10.2} {:>8.1}% {:>6}",
                cell.workers,
                cell.max_batch,
                cell.throughput_rps,
                cell.p50,
                cell.p99,
                cell.mean_batch_size,
                100.0 * cell.cache_hit_rate,
                cell.simulations
            );
            cells.push(cell);
        }
    }

    if let (Some(first), Some(last)) = (cells.first(), cells.last()) {
        println!(
            "\nthroughput corner-to-corner: x{:.2} ({} worker / batch {} -> {} workers / batch {})",
            last.throughput_rps / first.throughput_rps.max(1e-9),
            first.workers,
            first.max_batch,
            last.workers,
            last.max_batch
        );
    }

    if let (Some(tracer), Some(dir)) = (&tracer, &trace_dir) {
        if let Err(e) = tracer.write_shards(dir) {
            eprintln!("serve_throughput: cannot write trace shards: {e}");
        } else {
            match export_trace(dir, "trace_serve.json", "trace_serve_report.json") {
                Ok(analysis) => {
                    println!("{analysis}");
                    eprintln!("[trace written to {}]", dir.display());
                }
                Err(e) => eprintln!("serve_throughput: cannot export trace: {e}"),
            }
        }
    }

    let mut meta = BenchMeta::new(
        "serve_throughput",
        match scale {
            Scale::Ci => "ci",
            Scale::Default => "default",
            Scale::Paper => "paper",
        },
    );
    meta.n = requests;
    meta.workers = worker_grid.iter().copied().max().unwrap_or(0);
    let mut result = BenchResult::new(meta);
    // Every cell must answer its whole request stream — a deterministic
    // count the gate pins exactly. Throughput, latency and cache shape
    // depend on host load, so they stay informational.
    let completed_total: u64 = cells.iter().map(|c| c.completed).sum();
    result.metric(
        "completed_total",
        completed_total as f64,
        0.0,
        Direction::Exact,
    );
    for c in &cells {
        let tag = format!("w{}_b{}", c.workers, c.max_batch);
        result.info(&format!("rps_{tag}"), c.throughput_rps);
        result.info(&format!("p50_us_{tag}"), c.p50.as_micros() as f64);
        result.info(&format!("p99_us_{tag}"), c.p99.as_micros() as f64);
        result.info(&format!("mean_batch_{tag}"), c.mean_batch_size);
        result.info(&format!("hit_rate_{tag}"), c.cache_hit_rate);
        result.info(&format!("sims_{tag}"), c.simulations as f64);
    }
    result.write();
}
