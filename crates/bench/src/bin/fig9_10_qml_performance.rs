//! Figures 9 and 10: train / test AUC as the number of features and the
//! training-set size grow.
//!
//! Expected shape: test AUC improves with features for the largest sample
//! size; the smallest sample size overfits (high train AUC, flat or noisy
//! test AUC).
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin fig9_10_qml_performance -- \
//!     [--scale ci|default|paper] [--gamma G] [--runs R]

use qk_bench::{mean, write_results, Args, Scale};
use qk_circuit::AnsatzConfig;
use qk_core::pipeline::{run_quantum_experiment, ExperimentConfig};
use qk_data::{generate, SyntheticConfig};
use qk_tensor::backend::CpuBackend;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    samples: usize,
    features: usize,
    train_auc: f64,
    test_auc: f64,
}

fn main() {
    let args = Args::from_env();
    // Paper: sample sizes {300, 1500, 6400}, features {15, 50, 100, 165},
    // r = 2, d = 1, gamma = 0.1.
    let (sample_sizes, feature_grid, dataset, runs): (
        Vec<usize>,
        Vec<usize>,
        SyntheticConfig,
        usize,
    ) = match args.scale() {
        Scale::Ci => (
            vec![40, 80],
            vec![4, 8],
            SyntheticConfig {
                num_features: 8,
                num_illicit: 60,
                num_licit: 60,
                latent_dim: 6,
                noise: 1.6,
                seed: 0,
            },
            1,
        ),
        Scale::Default => (
            vec![80, 240, 480],
            vec![4, 12, 24, 40],
            SyntheticConfig {
                num_features: 40,
                num_illicit: 320,
                num_licit: 320,
                latent_dim: 6,
                noise: 1.6,
                seed: 0,
            },
            3,
        ),
        Scale::Paper => (
            vec![300, 1500, 6400],
            vec![15, 50, 100, 165],
            SyntheticConfig::elliptic_like(0),
            1,
        ),
    };
    let gamma = args.get_or("gamma", 0.25);
    let runs = args.get_or("runs", runs);

    let backend = CpuBackend::new();
    println!(
        "Figs. 9-10: AUC vs features for several sample sizes (r = 2, d = 1, gamma = {gamma})"
    );
    println!("paper shape: test AUC improves with features at the largest N; the");
    println!("smallest N overfits (train AUC highest, test AUC unstable)\n");

    let mut points = Vec::new();
    println!(
        "{:>9} {:>9} | {:>10} {:>10}",
        "N", "features", "train AUC", "test AUC"
    );
    for &n in &sample_sizes {
        for &k in &feature_grid {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for run in 0..runs {
                let seed = 100 + run as u64;
                let data = generate(&SyntheticConfig { seed, ..dataset });
                let config = ExperimentConfig {
                    ansatz: AnsatzConfig::new(2, 1, gamma),
                    ..ExperimentConfig::qml(n, k, seed)
                };
                let result = run_quantum_experiment(&data, &config, &backend);
                train.push(result.best_train_auc());
                test.push(result.best_test_auc());
            }
            let p = Point {
                samples: n,
                features: k,
                train_auc: mean(&train),
                test_auc: mean(&test),
            };
            println!(
                "{:>9} {:>9} | {:>10.3} {:>10.3}",
                n, k, p.train_auc, p.test_auc
            );
            points.push(p);
        }
        println!();
    }

    // Shape summary: AUC gain from fewest to most features per sample size.
    for &n in &sample_sizes {
        let series: Vec<&Point> = points.iter().filter(|p| p.samples == n).collect();
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            println!(
                "N = {n}: test AUC {:.3} -> {:.3} ({:+.3}) from {} to {} features",
                first.test_auc,
                last.test_auc,
                last.test_auc - first.test_auc,
                first.features,
                last.features
            );
        }
    }
    write_results("fig9_10_qml_performance", &points);
}
