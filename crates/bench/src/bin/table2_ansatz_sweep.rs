//! Table II: SVM performance for interaction distance x bandwidth, with
//! the Gaussian-kernel baseline in the first row.
//!
//! The paper runs 6 seeded data samples per configuration, averages the
//! metrics per regularization coefficient, then reports the
//! highest-mean-AUC coefficient. The same protocol is used here.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin table2_ansatz_sweep -- \
//!     [--scale ci|default|paper] [--features M] [--samples N] [--runs R]

use qk_bench::{write_results, Args, Scale};
use qk_circuit::AnsatzConfig;
use qk_core::gram::gram_matrix;
use qk_core::pipeline::{run_gaussian_on_split, run_quantum_on_split, ExperimentConfig};
use qk_core::states::simulate_states;
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_mps::TruncationConfig;
use qk_svm::{default_c_grid, gaussian_gram, geometric_difference, scale_bandwidth, Metrics};
use qk_tensor::backend::CpuBackend;
use serde::Serialize;

#[derive(Serialize)]
struct TableRow {
    kernel: String,
    interaction_distance: Option<usize>,
    gamma: Option<f64>,
    auc: f64,
    recall: f64,
    precision: f64,
    accuracy: f64,
}

/// Averages metrics per C over runs and picks the best-mean-AUC C — the
/// paper's Table II protocol.
fn best_averaged(all_runs: &[Vec<(f64, Metrics)>]) -> Metrics {
    let grid_len = all_runs[0].len();
    let mut best: Option<Metrics> = None;
    for c_idx in 0..grid_len {
        let per_c: Vec<Metrics> = all_runs.iter().map(|run| run[c_idx].1).collect();
        let avg = Metrics::mean(&per_c);
        if best.is_none_or(|b| avg.auc > b.auc) {
            best = Some(avg);
        }
    }
    best.unwrap()
}

fn main() {
    let args = Args::from_env();
    // Paper: 50 features, 400 samples, r = 2, 6 runs,
    // d in {1,2,4,6} x gamma in {0.1, 0.5, 1.0}.
    let (features, samples, runs, distances): (usize, usize, usize, Vec<usize>) = match args.scale()
    {
        Scale::Ci => (6, 40, 2, vec![1, 2]),
        Scale::Default => (10, 100, 3, vec![1, 2, 4]),
        Scale::Paper => (50, 400, 6, vec![1, 2, 4, 6]),
    };
    let features = args.get_or("features", features);
    let samples = args.get_or("samples", samples);
    let runs = args.get_or("runs", runs);
    let gammas = [0.1f64, 0.5, 1.0];

    let backend = CpuBackend::new();
    let dataset_cfg = SyntheticConfig {
        num_features: features,
        num_illicit: samples,
        num_licit: samples,
        latent_dim: 6,
        noise: 1.6,
        seed: 0,
    };

    // Pre-build one split per run; all kernels share them, as in the paper.
    let splits: Vec<_> = (0..runs)
        .map(|r| {
            let seed = 200 + r as u64;
            let data = generate(&SyntheticConfig {
                seed,
                ..dataset_cfg
            });
            prepare_experiment(&data, samples, features, seed)
        })
        .collect();

    println!("Table II: ansatz expressivity sweep ({features} features, {samples} samples, r = 2, {runs} runs)");
    println!("paper shape: gamma = 0.1 underperforms the Gaussian baseline; gamma in");
    println!("{{0.5, 1.0}} beats it; the largest d degrades (overfitting)\n");
    println!(
        "{:>9} {:>3} {:>6} | {:>7} {:>7} {:>10} {:>9}",
        "kernel", "d", "gamma", "AUC", "recall", "precision", "accuracy"
    );

    let mut rows: Vec<TableRow> = Vec::new();

    // Gaussian baseline row.
    let gauss_runs: Vec<Vec<(f64, Metrics)>> = splits
        .iter()
        .map(|split| {
            run_gaussian_on_split(split, &default_c_grid(), 1e-3)
                .sweep
                .points
                .iter()
                .map(|p| (p.c, p.test))
                .collect()
        })
        .collect();
    let g = best_averaged(&gauss_runs);
    println!(
        "{:>9} {:>3} {:>6} | {:>7.3} {:>7.3} {:>10.3} {:>9.3}",
        "Gaussian", "-", "-", g.auc, g.recall, g.precision, g.accuracy
    );
    rows.push(TableRow {
        kernel: "gaussian".into(),
        interaction_distance: None,
        gamma: None,
        auc: g.auc,
        recall: g.recall,
        precision: g.precision,
        accuracy: g.accuracy,
    });

    for &gamma in &gammas {
        for &d in &distances {
            let q_runs: Vec<Vec<(f64, Metrics)>> = splits
                .iter()
                .enumerate()
                .map(|(r, split)| {
                    let config = ExperimentConfig {
                        ansatz: AnsatzConfig::new(2, d, gamma),
                        ..ExperimentConfig::qml(samples, features, 200 + r as u64)
                    };
                    run_quantum_on_split(split, &config, &backend)
                        .sweep
                        .points
                        .iter()
                        .map(|p| (p.c, p.test))
                        .collect()
                })
                .collect();
            let m = best_averaged(&q_runs);
            println!(
                "{:>9} {:>3} {:>6} | {:>7.3} {:>7.3} {:>10.3} {:>9.3}",
                "quantum", d, gamma, m.auc, m.recall, m.precision, m.accuracy
            );
            rows.push(TableRow {
                kernel: "quantum".into(),
                interaction_distance: Some(d),
                gamma: Some(gamma),
                auc: m.auc,
                recall: m.recall,
                precision: m.precision,
                accuracy: m.accuracy,
            });
        }
    }

    let best = rows
        .iter()
        .max_by(|a, b| a.auc.partial_cmp(&b.auc).unwrap())
        .unwrap();
    println!(
        "\nbest AUC: {} (d = {:?}, gamma = {:?}) with {:.3}",
        best.kernel, best.interaction_distance, best.gamma, best.auc
    );

    // Geometric difference g(K_gaussian || K_quantum) of Huang et al. for
    // the best quantum configuration: g near 1 means the quantum kernel's
    // geometry is classically reproducible; a large g is a necessary
    // (not sufficient) condition for quantum advantage on this data.
    let (gd, gg) = match (best.interaction_distance, best.gamma) {
        (Some(d), Some(g)) => (d, g),
        _ => (distances[0], 0.5), // Gaussian won; probe the first quantum config
    };
    let train = &splits[0].train.features;
    let batch = simulate_states(
        train,
        &AnsatzConfig::new(2, gd, gg),
        &backend,
        &TruncationConfig::default(),
    );
    let quantum_kernel = gram_matrix(&batch.states, &backend).kernel;
    let gaussian_kernel = gaussian_gram(train, scale_bandwidth(train));
    let g_adv = geometric_difference(&gaussian_kernel, &quantum_kernel, 1e-6);
    println!(
        "geometric difference g(Gaussian || quantum d = {gd}, gamma = {gg}): {g_adv:.2} \
         (sqrt(N) = {:.2} is the advantage ceiling)",
        (train.len() as f64).sqrt()
    );
    write_results("table2_ansatz_sweep", &rows);
}
