//! Figure 6: memory required to store the MPS as the simulation advances,
//! for two interaction-distance families. The sharp drops are SVD
//! truncations kicking in.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin fig6_memory_evolution -- \
//!     [--scale ci|default|paper] [--qubits M] [--dlow D] [--dhigh D]

use qk_bench::{sample_rows, write_results, Args, Scale};
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::{MpsSimulator, TracePoint, TruncationConfig};
use qk_tensor::backend::CpuBackend;
use serde::Serialize;

#[derive(Serialize)]
struct Family {
    interaction_distance: usize,
    /// Mean/min/max memory (KiB) at each percentile bucket of progress.
    buckets: Vec<Bucket>,
}

#[derive(Serialize)]
struct Bucket {
    progress_percent: f64,
    mean_kib: f64,
    min_kib: f64,
    max_kib: f64,
}

/// Aggregates several traces into percentile buckets, mirroring the
/// paper's mean line with min/max shading.
fn bucketize(traces: &[Vec<TracePoint>], buckets: usize) -> Vec<Bucket> {
    (1..=buckets)
        .map(|b| {
            let hi = 100.0 * b as f64 / buckets as f64;
            let lo = 100.0 * (b - 1) as f64 / buckets as f64;
            let mut values: Vec<f64> = Vec::new();
            for trace in traces {
                // Memory at the end of this progress window (last point in
                // range, or carry the previous value forward).
                let mut last: Option<f64> = None;
                for p in trace {
                    if p.progress_percent <= hi {
                        last = Some(p.memory_bytes as f64 / 1024.0);
                    }
                }
                let _ = lo;
                if let Some(v) = last {
                    values.push(v);
                }
            }
            let mean = if values.is_empty() {
                0.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            Bucket {
                progress_percent: hi,
                mean_kib: mean,
                min_kib: values.iter().copied().fold(f64::INFINITY, f64::min),
                max_kib: values.iter().copied().fold(0.0, f64::max),
            }
        })
        .collect()
}

fn run_family(qubits: usize, d: usize, samples: usize, gamma: f64) -> Family {
    let backend = CpuBackend::new();
    let sim = MpsSimulator::new(&backend)
        .with_truncation(TruncationConfig::default())
        .with_memory_trace(true);
    let rows = sample_rows(samples, qubits, 29 + d as u64);
    let traces: Vec<Vec<TracePoint>> = rows
        .iter()
        .map(|row| {
            let circuit = feature_map_circuit(row, &AnsatzConfig::new(2, d, gamma));
            sim.simulate(&circuit).1.trace
        })
        .collect();
    Family {
        interaction_distance: d,
        buckets: bucketize(&traces, 20),
    }
}

fn main() {
    let args = Args::from_env();
    // Paper: m = 100, r = 2, gamma = 1.0, families d = 6 and d = 12.
    let (qubits, dlow, dhigh, samples) = match args.scale() {
        Scale::Ci => (8, 2, 3, 2),
        Scale::Default => (16, 2, 4, 3),
        Scale::Paper => (100, 6, 12, 8),
    };
    let qubits = args.get_or("qubits", qubits);
    let dlow = args.get_or("dlow", dlow);
    let dhigh = args.get_or("dhigh", dhigh);
    let samples = args.get_or("samples", samples);
    let gamma = args.get_or("gamma", 1.0);

    println!("Fig. 6: MPS memory vs simulation progress (m = {qubits}, r = 2, gamma = {gamma})");
    println!("paper shape: exponential growth in gates applied, sharp drops at SVD");
    println!("truncations, higher-d family needs orders of magnitude more memory\n");

    let families = vec![
        run_family(qubits, dlow, samples, gamma),
        run_family(qubits, dhigh, samples, gamma),
    ];
    println!(
        "{:>10} | {:>24} | {:>24}",
        "% gates",
        format!("d = {dlow} mean (min..max) KiB"),
        format!("d = {dhigh} mean (min..max) KiB")
    );
    for (a, b) in families[0].buckets.iter().zip(&families[1].buckets) {
        println!(
            "{:>9.0}% | {:>8.1} ({:>6.1}..{:>6.1}) | {:>8.1} ({:>6.1}..{:>6.1})",
            a.progress_percent, a.mean_kib, a.min_kib, a.max_kib, b.mean_kib, b.min_kib, b.max_kib
        );
    }

    let peak_low = families[0]
        .buckets
        .iter()
        .map(|b| b.max_kib)
        .fold(0.0, f64::max);
    let peak_high = families[1]
        .buckets
        .iter()
        .map(|b| b.max_kib)
        .fold(0.0, f64::max);
    println!(
        "\npeak memory: d = {dlow}: {peak_low:.1} KiB, d = {dhigh}: {peak_high:.1} KiB (x{:.1})",
        peak_high / peak_low.max(1e-9)
    );
    write_results("fig6_memory_evolution", &families);
}
