//! Tiled Gram-engine scaling harness: tile size x worker count, plus a
//! checkpointed smoke mode for kill-and-resume drills.
//!
//! Two modes:
//!
//! * **Sweep** (default): runs the in-memory engine over every
//!   (tile, workers) cell, reporting wall time, throughput and the
//!   bitwise check against the single-pass reference.
//! * **Smoke** (`--smoke`): one fixed checkpointed job. A fresh run
//!   wipes the checkpoint directory first; `--resume` keeps it, so a
//!   SIGKILLed run picks up from its last completed tile. `--out FILE`
//!   writes the raw little-endian matrix bytes, which CI diffs between
//!   a killed+resumed run and a clean run (they must be identical).
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin gram_scale -- \
//!     [--scale ci|default|paper] [--n N] [--features M] \
//!     [--tiles 8,16,32] [--workers 1,2,4] \
//!     [--smoke] [--resume] [--checkpoint-dir DIR] [--out FILE] \
//!     [--throttle-ms T] [--budget-kb B] [--obs-dir DIR] \
//!     [--trace-dir DIR] \
//!     [--chaos SPEC] [--chaos-seed S] [--ranks K] [--hb-timeout-ms T]
//!
//! `--obs-dir DIR` (smoke mode) exports observability artifacts there:
//! the engine's lifecycle journal (`gram_journal.jsonl`) and the
//! unified `obs_gram.json` report with span rollups.
//!
//! `--trace-dir DIR` (smoke and rank modes) records tile-granular
//! timeline events (queue-wait, steal, band-load, compute,
//! checkpoint-write, rebalance, assemble), writes one
//! `trace_rank_<r>.jsonl` shard per rank plus the merged Chrome
//! trace-event file `trace_gram.json` (loadable in `chrome://tracing`
//! or Perfetto) and the `trace_report.json` utilization/critical-path
//! summary. Tracing never participates in the bitwise determinism
//! contract: `--out` bytes are identical with and without it.
//!
//! `--chaos SPEC` (smoke mode) arms a seeded fault plan in
//! `qk_chaos::FaultPlan::parse` grammar, e.g.
//! `gram.ckpt.store=io@first:2,gram.worker.tile=panic@at:3` or
//! `rank-death:1@1`; `--chaos-seed S` keys the schedule (same
//! seed + spec replays bitwise). `--ranks K` with K > 1 runs the
//! rank-distributed death drill instead of the engine, with per-rank
//! checkpoint dirs under `--checkpoint-dir` and heartbeat timeout
//! `--hb-timeout-ms` — the CI chaos drill drives both paths.

use qk_bench::schema::{BenchMeta, BenchResult, Direction};
use qk_bench::{export_trace, sample_rows, Args, Scale};
use qk_chaos::{Chaos, FaultPlan};
use qk_circuit::AnsatzConfig;
use qk_core::simulate_states;
use qk_gram::{
    encoding_fingerprint, rank_distributed_gram, GramConfig, GramEngine, GramError, RankConfig,
};
use qk_mps::TruncationConfig;
use qk_obs::Tracer;
use qk_tensor::backend::CpuBackend;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Writes the shards of an armed tracer and exports the merged Chrome
/// trace and analyzer summary, printing the summary to stdout.
fn finish_trace(tracer: Option<&Tracer>, dir: Option<&PathBuf>) {
    let (Some(tracer), Some(dir)) = (tracer, dir) else {
        return;
    };
    if let Err(e) = tracer.write_shards(dir) {
        eprintln!("gram_scale: cannot write trace shards: {e}");
        return;
    }
    match export_trace(dir, "trace_gram.json", "trace_report.json") {
        Ok(analysis) => {
            println!("{analysis}");
            eprintln!("[trace written to {}]", dir.display());
        }
        Err(e) => eprintln!("gram_scale: cannot export trace: {e}"),
    }
}

fn parse_list(args: &Args, key: &str, default: &[usize]) -> Vec<usize> {
    match args.get(key) {
        None => default.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("bad --{key}: {e:?}"))
            })
            .collect(),
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke(&args);
    } else {
        sweep(&args);
    }
}

/// One fixed checkpointed job; the CI kill-and-resume drill drives this.
fn smoke(args: &Args) {
    let n = args.get_or("n", 48usize);
    let features = args.get_or("features", 6usize);
    let tile = args.get_or("tile", 8usize);
    let workers = args.get_or("workers", 2usize);
    let dir = PathBuf::from(
        args.get("checkpoint-dir")
            .unwrap_or("results/gram_scale_ckpt"),
    );
    let resume = args.flag("resume");
    if !resume && dir.exists() {
        std::fs::remove_dir_all(&dir).expect("wiping stale checkpoint dir");
    }

    let chaos = match args.get("chaos") {
        None => Chaos::disarmed(),
        Some(spec) => {
            let seed = args.get_or("chaos-seed", 0u64);
            FaultPlan::parse(seed, spec)
                .unwrap_or_else(|e| panic!("bad --chaos: {e}"))
                .arm()
        }
    };

    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let be = CpuBackend::new();
    let rows = sample_rows(n, features, 11);
    let states = simulate_states(&rows, &ansatz, &be, &trunc).states;
    let encoding = encoding_fingerprint(&ansatz, &trunc);

    let trace_dir = args.get("trace-dir").map(PathBuf::from);
    if let Some(d) = &trace_dir {
        std::fs::create_dir_all(d).expect("creating --trace-dir");
    }
    let tracer = trace_dir.as_ref().map(|_| Tracer::new());

    if args.get_or("ranks", 1usize) > 1 {
        rank_drill(args, dir, chaos, encoding, &states, &be, tracer, trace_dir);
        return;
    }

    let mut cfg = GramConfig::checkpointed(&dir, tile, encoding);
    cfg.workers = workers;
    cfg.chaos = chaos;
    cfg.trace = tracer.clone();
    cfg.throttle = match args.get_or("throttle-ms", 0u64) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    cfg.memory_budget = match args.get_or("budget-kb", 0usize) {
        0 => None,
        kb => Some(kb * 1024),
    };
    cfg.obs_dir = args.get("obs-dir").map(PathBuf::from);
    let engine = GramEngine::new(cfg);
    let out = match engine.compute_gram_owned(states, &be) {
        Ok(out) => out,
        Err(GramError::Interrupted { done, total }) => {
            eprintln!("interrupted at {done}/{total} tiles; re-run with --resume");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("gram job failed: {e}");
            std::process::exit(1);
        }
    };
    let r = &out.report;
    println!(
        "gram_scale smoke: n={n} tile={tile} workers={workers} resume={resume}\n\
         tiles {}/{} computed, {} restored; {} inner products; wall {:.3?}; spilled {}",
        r.tiles_computed, r.tiles_total, r.tiles_restored, r.inner_products, r.wall_time, r.spilled
    );
    println!("{}", engine.metrics().snapshot());
    finish_trace(tracer.as_ref(), trace_dir.as_ref());

    if let Some(path) = args.get("out") {
        let mut bytes = Vec::with_capacity(out.kernel.data().len() * 8);
        for v in out.kernel.data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut f = std::fs::File::create(path).expect("creating --out file");
        f.write_all(&bytes).expect("writing --out file");
        eprintln!("[matrix bytes written to {path}]");
    }
    let mut meta = BenchMeta::new("gram_scale_smoke", "smoke");
    meta.n = n;
    meta.tile = tile;
    meta.workers = workers;
    let mut result = BenchResult::new(meta);
    // Structural counts are covered by the determinism contract: a
    // clean smoke at fixed (n, tile) must reproduce them bit-for-bit.
    result.metric("tiles_total", r.tiles_total as f64, 0.0, Direction::Exact);
    result.metric(
        "inner_products",
        r.inner_products as f64,
        0.0,
        Direction::Exact,
    );
    // Resume- and scheduling-dependent counts, plus absolute wall time,
    // are informational only.
    result.info("tiles_computed", r.tiles_computed as f64);
    result.info("tiles_restored", r.tiles_restored as f64);
    result.info("tiles_stolen", r.tiles_stolen as f64);
    result.info("bands_spilled", r.bands_spilled as f64);
    result.info("bands_reloaded", r.bands_reloaded as f64);
    result.info("wall_us", r.wall_time.as_micros() as f64);
    result.info("spilled", u64::from(r.spilled) as f64);
    result.write();
}

/// Rank-death drill: run the simulated-MPI rank driver instead of the
/// engine, optionally killing ranks via the armed plan, and dump the
/// same `--out` byte format so CI can `cmp` against a clean run.
#[allow(clippy::too_many_arguments)]
fn rank_drill(
    args: &Args,
    dir: PathBuf,
    chaos: Chaos,
    encoding: u64,
    states: &[qk_mps::Mps],
    be: &CpuBackend,
    tracer: Option<Tracer>,
    trace_dir: Option<PathBuf>,
) {
    let n = states.len();
    let tile = args.get_or("tile", 8usize);
    let ranks = args.get_or("ranks", 1usize);
    let mut cfg = RankConfig::new(ranks, tile, &dir);
    cfg.encoding = encoding;
    cfg.chaos = chaos;
    cfg.hb_timeout = Duration::from_millis(args.get_or("hb-timeout-ms", 300u64));
    cfg.obs_dir = args.get("obs-dir").map(PathBuf::from);
    cfg.trace = tracer.clone();
    let out = rank_distributed_gram(states, be, &cfg);
    finish_trace(tracer.as_ref(), trace_dir.as_ref());
    let rep = &out.report;
    println!(
        "gram_scale rank drill: n={n} tile={tile} ranks={ranks}\n\
         dead ranks {:?}; {} tiles adopted from checkpoints, {} recomputed; \
         {} faults injected",
        rep.dead_ranks,
        rep.tiles_adopted,
        rep.tiles_recomputed,
        cfg.chaos.injected(),
    );
    for (r, s) in rep.per_rank.iter().enumerate() {
        println!(
            "  rank {r}: {} tiles completed, {} adopted, {} recomputed{}",
            s.tiles_completed,
            s.tiles_adopted,
            s.tiles_recomputed,
            if s.died { " [died]" } else { "" }
        );
    }
    if let Some(path) = args.get("out") {
        let mut bytes = Vec::with_capacity(out.kernel.data().len() * 8);
        for v in out.kernel.data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut f = std::fs::File::create(path).expect("creating --out file");
        f.write_all(&bytes).expect("writing --out file");
        eprintln!("[matrix bytes written to {path}]");
    }
    let mut meta = BenchMeta::new("gram_rank_drill", "smoke");
    meta.n = n;
    meta.tile = tile;
    meta.ranks = ranks;
    let mut result = BenchResult::new(meta);
    // Every drill metric is chaos-plan dependent (CI runs this bin with
    // several different plans), so the record is informational.
    result.info("dead_ranks", rep.dead_ranks.len() as f64);
    result.info("tiles_adopted", rep.tiles_adopted as f64);
    result.info("tiles_recomputed", rep.tiles_recomputed as f64);
    result.info("faults_injected", cfg.chaos.injected() as f64);
    result.write();
}

/// Tile x workers sweep over the in-memory engine.
fn sweep(args: &Args) {
    let scale = args.scale();
    let (n, features, tile_grid, worker_grid): (usize, usize, &[usize], &[usize]) = match scale {
        Scale::Ci => (24, 4, &[4, 8], &[1, 2]),
        Scale::Default => (96, 8, &[8, 16, 32], &[1, 2, 4]),
        Scale::Paper => (512, 16, &[32, 64, 128, 256], &[1, 2, 4, 8, 16]),
    };
    let n = args.get_or("n", n);
    let features = args.get_or("features", features);
    let tiles = parse_list(args, "tiles", tile_grid);
    let workers = parse_list(args, "workers", worker_grid);

    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let be = CpuBackend::new();
    let rows = sample_rows(n, features, 11);
    let states = simulate_states(&rows, &ansatz, &be, &trunc).states;

    // Single-pass reference for the bitwise check.
    let mut reference = vec![0.0f64; n * n];
    for i in 0..n {
        reference[i * n + i] = 1.0;
        for j in (i + 1)..n {
            let v = states[i].inner_with(&be, &states[j]).norm_sqr();
            reference[i * n + j] = v;
            reference[j * n + i] = v;
        }
    }

    println!("gram_scale sweep: n={n} features={features}");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>8}",
        "tile", "workers", "wall", "ip/s", "bitwise"
    );
    let mut meta = BenchMeta::new(
        "gram_scale",
        match scale {
            Scale::Ci => "ci",
            Scale::Default => "default",
            Scale::Paper => "paper",
        },
    );
    meta.n = n;
    meta.workers = workers.iter().copied().max().unwrap_or(0);
    let mut result = BenchResult::new(meta);
    let mut all_bitwise = true;
    for &tile in &tiles {
        for &w in &workers {
            let mut cfg = GramConfig::in_memory(tile);
            cfg.workers = w;
            let engine = GramEngine::new(cfg);
            let out = engine
                .compute_gram(&states, &be)
                .expect("in-memory sweep cell cannot fail");
            let r = &out.report;
            let ips = r.inner_products as f64 / r.wall_time.as_secs_f64().max(1e-9);
            let ok = out.kernel.data() == reference.as_slice();
            all_bitwise &= ok;
            println!(
                "{:>6} {:>8} {:>12.3?} {:>14.0} {:>8}",
                tile, w, r.wall_time, ips, ok
            );
            result.info(
                &format!("wall_us_t{tile}_w{w}"),
                r.wall_time.as_micros() as f64,
            );
            result.info(&format!("ips_t{tile}_w{w}"), ips);
            result.metric(
                &format!("tiles_total_t{tile}"),
                r.tiles_total as f64,
                0.0,
                Direction::Exact,
            );
        }
    }
    assert!(
        all_bitwise,
        "a sweep cell diverged from the single-pass reference"
    );
    // Every cell matched the single-pass reference bitwise; the gate
    // pins that at 1.
    result.metric("bitwise_ok", 1.0, 0.0, Direction::Exact);
    result.write();
}
