//! Tiled Gram-engine scaling harness: tile size x worker count, plus a
//! checkpointed smoke mode for kill-and-resume drills.
//!
//! Two modes:
//!
//! * **Sweep** (default): runs the in-memory engine over every
//!   (tile, workers) cell, reporting wall time, throughput and the
//!   bitwise check against the single-pass reference.
//! * **Smoke** (`--smoke`): one fixed checkpointed job. A fresh run
//!   wipes the checkpoint directory first; `--resume` keeps it, so a
//!   SIGKILLed run picks up from its last completed tile. `--out FILE`
//!   writes the raw little-endian matrix bytes, which CI diffs between
//!   a killed+resumed run and a clean run (they must be identical).
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin gram_scale -- \
//!     [--scale ci|default|paper] [--n N] [--features M] \
//!     [--tiles 8,16,32] [--workers 1,2,4] \
//!     [--smoke] [--resume] [--checkpoint-dir DIR] [--out FILE] \
//!     [--throttle-ms T] [--budget-kb B] [--obs-dir DIR] \
//!     [--chaos SPEC] [--chaos-seed S] [--ranks K] [--hb-timeout-ms T]
//!
//! `--obs-dir DIR` (smoke mode) exports observability artifacts there:
//! the engine's lifecycle journal (`gram_journal.jsonl`) and the
//! unified `obs_gram.json` report with span rollups.
//!
//! `--chaos SPEC` (smoke mode) arms a seeded fault plan in
//! `qk_chaos::FaultPlan::parse` grammar, e.g.
//! `gram.ckpt.store=io@first:2,gram.worker.tile=panic@at:3` or
//! `rank-death:1@1`; `--chaos-seed S` keys the schedule (same
//! seed + spec replays bitwise). `--ranks K` with K > 1 runs the
//! rank-distributed death drill instead of the engine, with per-rank
//! checkpoint dirs under `--checkpoint-dir` and heartbeat timeout
//! `--hb-timeout-ms` — the CI chaos drill drives both paths.

use qk_bench::{sample_rows, write_results, Args, Scale};
use qk_chaos::{Chaos, FaultPlan};
use qk_circuit::AnsatzConfig;
use qk_core::simulate_states;
use qk_gram::{
    encoding_fingerprint, rank_distributed_gram, GramConfig, GramEngine, GramError, RankConfig,
};
use qk_mps::TruncationConfig;
use qk_tensor::backend::CpuBackend;
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

#[derive(Serialize)]
struct Cell {
    tile: usize,
    workers: usize,
    n: usize,
    wall: Duration,
    throughput_ips: f64,
    tiles_total: usize,
    bitwise_ok: bool,
}

#[derive(Serialize)]
struct RankRecord {
    n: usize,
    tile: usize,
    ranks: usize,
    dead_ranks: Vec<usize>,
    tiles_adopted: u64,
    tiles_recomputed: u64,
    faults_injected: u64,
}

#[derive(Serialize)]
struct SmokeRecord {
    n: usize,
    tile: usize,
    workers: usize,
    tiles_total: usize,
    tiles_computed: usize,
    tiles_restored: usize,
    tiles_stolen: u64,
    bands_spilled: u64,
    bands_reloaded: u64,
    inner_products: usize,
    wall: Duration,
    spilled: bool,
}

fn parse_list(args: &Args, key: &str, default: &[usize]) -> Vec<usize> {
    match args.get(key) {
        None => default.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("bad --{key}: {e:?}"))
            })
            .collect(),
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("smoke") {
        smoke(&args);
    } else {
        sweep(&args);
    }
}

/// One fixed checkpointed job; the CI kill-and-resume drill drives this.
fn smoke(args: &Args) {
    let n = args.get_or("n", 48usize);
    let features = args.get_or("features", 6usize);
    let tile = args.get_or("tile", 8usize);
    let workers = args.get_or("workers", 2usize);
    let dir = PathBuf::from(
        args.get("checkpoint-dir")
            .unwrap_or("results/gram_scale_ckpt"),
    );
    let resume = args.flag("resume");
    if !resume && dir.exists() {
        std::fs::remove_dir_all(&dir).expect("wiping stale checkpoint dir");
    }

    let chaos = match args.get("chaos") {
        None => Chaos::disarmed(),
        Some(spec) => {
            let seed = args.get_or("chaos-seed", 0u64);
            FaultPlan::parse(seed, spec)
                .unwrap_or_else(|e| panic!("bad --chaos: {e}"))
                .arm()
        }
    };

    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let be = CpuBackend::new();
    let rows = sample_rows(n, features, 11);
    let states = simulate_states(&rows, &ansatz, &be, &trunc).states;
    let encoding = encoding_fingerprint(&ansatz, &trunc);

    if args.get_or("ranks", 1usize) > 1 {
        rank_drill(args, dir, chaos, encoding, &states, &be);
        return;
    }

    let mut cfg = GramConfig::checkpointed(&dir, tile, encoding);
    cfg.workers = workers;
    cfg.chaos = chaos;
    cfg.throttle = match args.get_or("throttle-ms", 0u64) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    cfg.memory_budget = match args.get_or("budget-kb", 0usize) {
        0 => None,
        kb => Some(kb * 1024),
    };
    cfg.obs_dir = args.get("obs-dir").map(PathBuf::from);
    let engine = GramEngine::new(cfg);
    let out = match engine.compute_gram_owned(states, &be) {
        Ok(out) => out,
        Err(GramError::Interrupted { done, total }) => {
            eprintln!("interrupted at {done}/{total} tiles; re-run with --resume");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("gram job failed: {e}");
            std::process::exit(1);
        }
    };
    let r = &out.report;
    println!(
        "gram_scale smoke: n={n} tile={tile} workers={workers} resume={resume}\n\
         tiles {}/{} computed, {} restored; {} inner products; wall {:.3?}; spilled {}",
        r.tiles_computed, r.tiles_total, r.tiles_restored, r.inner_products, r.wall_time, r.spilled
    );
    println!("{}", engine.metrics().snapshot());

    if let Some(path) = args.get("out") {
        let mut bytes = Vec::with_capacity(out.kernel.data().len() * 8);
        for v in out.kernel.data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut f = std::fs::File::create(path).expect("creating --out file");
        f.write_all(&bytes).expect("writing --out file");
        eprintln!("[matrix bytes written to {path}]");
    }
    write_results(
        "gram_scale_smoke",
        &SmokeRecord {
            n,
            tile,
            workers,
            tiles_total: r.tiles_total,
            tiles_computed: r.tiles_computed,
            tiles_restored: r.tiles_restored,
            tiles_stolen: r.tiles_stolen,
            bands_spilled: r.bands_spilled,
            bands_reloaded: r.bands_reloaded,
            inner_products: r.inner_products,
            wall: r.wall_time,
            spilled: r.spilled,
        },
    );
}

/// Rank-death drill: run the simulated-MPI rank driver instead of the
/// engine, optionally killing ranks via the armed plan, and dump the
/// same `--out` byte format so CI can `cmp` against a clean run.
fn rank_drill(
    args: &Args,
    dir: PathBuf,
    chaos: Chaos,
    encoding: u64,
    states: &[qk_mps::Mps],
    be: &CpuBackend,
) {
    let n = states.len();
    let tile = args.get_or("tile", 8usize);
    let ranks = args.get_or("ranks", 1usize);
    let mut cfg = RankConfig::new(ranks, tile, &dir);
    cfg.encoding = encoding;
    cfg.chaos = chaos;
    cfg.hb_timeout = Duration::from_millis(args.get_or("hb-timeout-ms", 300u64));
    cfg.obs_dir = args.get("obs-dir").map(PathBuf::from);
    let out = rank_distributed_gram(states, be, &cfg);
    let rep = &out.report;
    println!(
        "gram_scale rank drill: n={n} tile={tile} ranks={ranks}\n\
         dead ranks {:?}; {} tiles adopted from checkpoints, {} recomputed; \
         {} faults injected",
        rep.dead_ranks,
        rep.tiles_adopted,
        rep.tiles_recomputed,
        cfg.chaos.injected(),
    );
    for (r, s) in rep.per_rank.iter().enumerate() {
        println!(
            "  rank {r}: {} tiles completed, {} adopted, {} recomputed{}",
            s.tiles_completed,
            s.tiles_adopted,
            s.tiles_recomputed,
            if s.died { " [died]" } else { "" }
        );
    }
    if let Some(path) = args.get("out") {
        let mut bytes = Vec::with_capacity(out.kernel.data().len() * 8);
        for v in out.kernel.data() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut f = std::fs::File::create(path).expect("creating --out file");
        f.write_all(&bytes).expect("writing --out file");
        eprintln!("[matrix bytes written to {path}]");
    }
    write_results(
        "gram_rank_drill",
        &RankRecord {
            n,
            tile,
            ranks,
            dead_ranks: rep.dead_ranks.clone(),
            tiles_adopted: rep.tiles_adopted,
            tiles_recomputed: rep.tiles_recomputed,
            faults_injected: cfg.chaos.injected(),
        },
    );
}

/// Tile x workers sweep over the in-memory engine.
fn sweep(args: &Args) {
    let scale = args.scale();
    let (n, features, tile_grid, worker_grid): (usize, usize, &[usize], &[usize]) = match scale {
        Scale::Ci => (24, 4, &[4, 8], &[1, 2]),
        Scale::Default => (96, 8, &[8, 16, 32], &[1, 2, 4]),
        Scale::Paper => (512, 16, &[32, 64, 128, 256], &[1, 2, 4, 8, 16]),
    };
    let n = args.get_or("n", n);
    let features = args.get_or("features", features);
    let tiles = parse_list(args, "tiles", tile_grid);
    let workers = parse_list(args, "workers", worker_grid);

    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let be = CpuBackend::new();
    let rows = sample_rows(n, features, 11);
    let states = simulate_states(&rows, &ansatz, &be, &trunc).states;

    // Single-pass reference for the bitwise check.
    let mut reference = vec![0.0f64; n * n];
    for i in 0..n {
        reference[i * n + i] = 1.0;
        for j in (i + 1)..n {
            let v = states[i].inner_with(&be, &states[j]).norm_sqr();
            reference[i * n + j] = v;
            reference[j * n + i] = v;
        }
    }

    println!("gram_scale sweep: n={n} features={features}");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>8}",
        "tile", "workers", "wall", "ip/s", "bitwise"
    );
    let mut cells = Vec::new();
    for &tile in &tiles {
        for &w in &workers {
            let mut cfg = GramConfig::in_memory(tile);
            cfg.workers = w;
            let engine = GramEngine::new(cfg);
            let out = engine
                .compute_gram(&states, &be)
                .expect("in-memory sweep cell cannot fail");
            let r = &out.report;
            let ips = r.inner_products as f64 / r.wall_time.as_secs_f64().max(1e-9);
            let ok = out.kernel.data() == reference.as_slice();
            println!(
                "{:>6} {:>8} {:>12.3?} {:>14.0} {:>8}",
                tile, w, r.wall_time, ips, ok
            );
            cells.push(Cell {
                tile,
                workers: w,
                n,
                wall: r.wall_time,
                throughput_ips: ips,
                tiles_total: r.tiles_total,
                bitwise_ok: ok,
            });
        }
    }
    assert!(
        cells.iter().all(|c| c.bitwise_ok),
        "a sweep cell diverged from the single-pass reference"
    );
    write_results("gram_scale", &cells);
}
