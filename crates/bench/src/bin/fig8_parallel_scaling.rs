//! Figure 8: wall-clock breakdown of the Gram-matrix computation as the
//! data set size and the number of (simulated) processes double together.
//!
//! Expected shape: simulation time stays flat (linear work / linear
//! processes), inner-product time doubles per step (quadratic work /
//! linear processes); communication is small compared to simulation.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin fig8_parallel_scaling -- \
//!     [--scale ci|default|paper] [--features M] [--base-n N] [--steps S]

use qk_bench::{sample_rows, write_results, Args, Scale};
use qk_circuit::AnsatzConfig;
use qk_core::distributed::{distributed_gram, Strategy};
use qk_mps::TruncationConfig;
use qk_tensor::backend::CpuBackend;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Bar {
    data_points: usize,
    processes: usize,
    simulation: Duration,
    inner_products: Duration,
    communication: Duration,
    wall: Duration,
    bytes_communicated: usize,
}

fn main() {
    let args = Args::from_env();
    // Paper: m = 165, r = 2, d = 1, gamma = 0.1; N in {400..6400} with
    // GPUs in {2..32}.
    let (features, base_n, base_procs, steps) = match args.scale() {
        Scale::Ci => (12, 16, 2, 2),
        Scale::Default => (48, 48, 2, 4),
        Scale::Paper => (165, 400, 2, 5),
    };
    let features = args.get_or("features", features);
    let base_n = args.get_or("base-n", base_n);
    let base_procs = args.get_or("base-procs", base_procs);
    let steps = args.get_or("steps", steps);

    let ansatz = AnsatzConfig::qml_default();
    let trunc = TruncationConfig::default();
    let backend = CpuBackend::new();

    println!(
        "Fig. 8: Gram wall-clock breakdown, round-robin strategy (m = {features}, r = 2, d = 1, gamma = 0.1)"
    );
    println!("paper shape: simulation flat as N and processes double together;");
    println!("inner products roughly double per bar\n");
    println!(
        "{:>8} {:>7} | {:>12} {:>14} {:>14} {:>12}",
        "N", "procs", "simulation", "inner prods", "communication", "wall"
    );

    let mut bars = Vec::new();
    for step in 0..steps {
        let n = base_n << step;
        let procs = base_procs << step;
        let rows = sample_rows(n, features, 37);
        let result = distributed_gram(
            &rows,
            &ansatz,
            &backend,
            &trunc,
            procs,
            Strategy::RoundRobin,
        );
        let max = result.max_phase_times();
        println!(
            "{:>8} {:>7} | {:>12.3?} {:>14.3?} {:>14.3?} {:>12.3?}",
            n, procs, max.simulation, max.inner_products, max.communication, result.wall_time
        );
        bars.push(Bar {
            data_points: n,
            processes: procs,
            simulation: max.simulation,
            inner_products: max.inner_products,
            communication: max.communication,
            wall: result.wall_time,
            bytes_communicated: result.bytes_communicated,
        });
    }

    if bars.len() >= 2 {
        let first = &bars[0];
        let last = &bars[bars.len() - 1];
        println!(
            "\nsimulation ratio last/first: {:.2} (paper: ~1.0, flat)",
            last.simulation.as_secs_f64() / first.simulation.as_secs_f64().max(1e-9)
        );
        let per_step = (last.inner_products.as_secs_f64()
            / first.inner_products.as_secs_f64().max(1e-9))
        .powf(1.0 / (bars.len() - 1) as f64);
        println!("inner-product growth per doubling: x{per_step:.2} (paper: ~x2)");
    }
    write_results("fig8_parallel_scaling", &bars);
}
