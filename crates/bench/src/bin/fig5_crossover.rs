//! Figure 5 + Table I: CPU/GPU runtime crossover as the qubit interaction
//! distance grows.
//!
//! For each `d`, simulates a batch of circuits and computes all pairwise
//! inner products on both backends, reporting median and quartiles of the
//! per-circuit / per-inner-product times, plus Table I (average largest
//! bond dimension per backend and memory per MPS).
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin fig5_crossover -- \
//!     [--scale ci|default|paper] [--qubits M] [--dmax D] [--samples K]

use qk_bench::{median, quartiles, sample_rows, write_results, Args, Scale};
use qk_circuit::ansatz::{feature_map_circuit, AnsatzConfig};
use qk_mps::{Mps, MpsSimulator, TruncationConfig};
use qk_tensor::backend::{AcceleratorBackend, CpuBackend, ExecutionBackend};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct BackendPoint {
    backend: &'static str,
    interaction_distance: usize,
    sim_median: Duration,
    sim_q1: Duration,
    sim_q3: Duration,
    inner_median: Duration,
    inner_q1: Duration,
    inner_q3: Duration,
    avg_largest_chi: f64,
    avg_memory_mib: f64,
}

/// Times one closure on the backend's clock: the virtual device clock if
/// the backend has one (the accelerator), wall-clock otherwise (the CPU).
fn timed<T>(backend: &dyn ExecutionBackend, f: impl FnOnce() -> T) -> (T, Duration) {
    match backend.virtual_clock() {
        Some(before) => {
            let out = f();
            (out, backend.virtual_clock().unwrap() - before)
        }
        None => {
            let t0 = Instant::now();
            let out = f();
            (out, t0.elapsed())
        }
    }
}

fn run_backend(
    backend: &dyn ExecutionBackend,
    name: &'static str,
    rows: &[Vec<f64>],
    d: usize,
    gamma: f64,
) -> BackendPoint {
    let cfg = AnsatzConfig::new(2, d, gamma);
    let sim = MpsSimulator::new(backend).with_truncation(TruncationConfig::default());

    let mut sim_times = Vec::new();
    let mut states: Vec<Mps> = Vec::new();
    for row in rows {
        let circuit = feature_map_circuit(row, &cfg);
        let ((mps, _), t) = timed(backend, || sim.simulate(&circuit));
        sim_times.push(t);
        states.push(mps);
    }

    let mut inner_times = Vec::new();
    for i in 0..states.len() {
        for j in (i + 1)..states.len() {
            let (_, t) = timed(backend, || states[i].inner_with(backend, &states[j]));
            inner_times.push(t);
        }
    }

    let avg_chi = states.iter().map(|s| s.max_bond() as f64).sum::<f64>() / states.len() as f64;
    let avg_mem = states.iter().map(|s| s.memory_bytes() as f64).sum::<f64>()
        / states.len() as f64
        / (1024.0 * 1024.0);
    let (sim_q1, sim_q3) = quartiles(sim_times.clone());
    let (inner_q1, inner_q3) = quartiles(inner_times.clone());
    BackendPoint {
        backend: name,
        interaction_distance: d,
        sim_median: median(sim_times),
        sim_q1,
        sim_q3,
        inner_median: median(inner_times),
        inner_q1,
        inner_q3,
        avg_largest_chi: avg_chi,
        avg_memory_mib: avg_mem,
    }
}

fn main() {
    let args = Args::from_env();
    // Paper: m = 100, r = 2, gamma = 1.0, d in {2,4,...,12}, 8 circuits.
    let (qubits, dmax, samples) = match args.scale() {
        Scale::Ci => (10, 3, 3),
        Scale::Default => (16, 4, 3),
        Scale::Paper => (100, 12, 8),
    };
    let qubits = args.get_or("qubits", qubits);
    let dmax = args.get_or("dmax", dmax);
    let samples = args.get_or("samples", samples);
    let gamma = args.get_or("gamma", 1.0);

    let rows = sample_rows(samples, qubits, 17);
    let cpu = CpuBackend::new();
    let acc = AcceleratorBackend::with_default_model();

    println!("Fig. 5 / Table I: CPU-GPU crossover (m = {qubits}, r = 2, gamma = {gamma})");
    println!("paper shape: GPU slower at small d (launch overhead), faster beyond the");
    println!("crossover (paper: d ~ 9, chi ~ 320); the accelerator is timed on its");
    println!("virtual device clock (see DESIGN.md substitution 1)\n");
    println!(
        "{:>3} {:>12} {:>12} {:>14} {:>14} | {:>9} {:>9} {:>10}",
        "d", "cpu sim", "gpu sim", "cpu inner", "gpu inner", "chi(cpu)", "chi(gpu)", "MiB/MPS"
    );

    let mut points: Vec<BackendPoint> = Vec::new();
    let mut sim_crossover: Option<usize> = None;
    let mut inner_crossover: Option<usize> = None;
    for d in 1..=dmax {
        let p_cpu = run_backend(&cpu, "cpu", &rows, d, gamma);
        let p_acc = run_backend(&acc, "accelerator", &rows, d, gamma);
        println!(
            "{:>3} {:>12.3?} {:>12.3?} {:>14.3?} {:>14.3?} | {:>9.1} {:>9.1} {:>10.3}",
            d,
            p_cpu.sim_median,
            p_acc.sim_median,
            p_cpu.inner_median,
            p_acc.inner_median,
            p_cpu.avg_largest_chi,
            p_acc.avg_largest_chi,
            p_acc.avg_memory_mib
        );
        if sim_crossover.is_none() && p_acc.sim_median < p_cpu.sim_median {
            sim_crossover = Some(d);
        }
        if inner_crossover.is_none() && p_acc.inner_median < p_cpu.inner_median {
            inner_crossover = Some(d);
        }
        points.push(p_cpu);
        points.push(p_acc);
    }

    println!("\nTable I (average largest bond dimension and memory per MPS):");
    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "distance", "chi (GPU)", "chi (CPU)", "memory (MiB)"
    );
    for pair in points.chunks(2) {
        let (c, a) = (&pair[0], &pair[1]);
        println!(
            "{:>12} {:>14.3} {:>14.3} {:>16.4}",
            c.interaction_distance, a.avg_largest_chi, c.avg_largest_chi, a.avg_memory_mib
        );
    }
    match sim_crossover {
        Some(d) => println!("\nFig. 5a (simulation) crossover: accelerator faster from d = {d}"),
        None => println!("\nFig. 5a: no simulation crossover in range (increase --dmax)"),
    }
    match inner_crossover {
        Some(d) => println!("Fig. 5b (inner products) crossover: accelerator faster from d = {d}"),
        None => println!("Fig. 5b: no inner-product crossover in range (increase --dmax)"),
    }
    write_results("fig5_crossover", &points);
}
