//! Perf-regression gate: diff a fresh `BENCH_*.json` against a
//! committed baseline.
//!
//! The baseline's per-metric `tol_rel` and `direction` annotations are
//! the contract (see [`qk_bench::schema`]); the fresh run's annotations
//! are ignored, so a regressed run cannot weaken its own gate. Exit
//! status: 0 when every gated metric passes, 1 on any regression
//! (including a gated metric missing from the fresh run), 2 on
//! unreadable or schema-invalid input.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin bench_compare -- \
//!     --baseline results/BENCH_kernel.json \
//!     --fresh /tmp/bench/BENCH_kernel.json \
//!     [--inject-regression FACTOR]
//!
//! `--inject-regression FACTOR` degrades every gated fresh metric by
//! FACTOR (< 1) before comparing — CI's self-test that the gate
//! actually trips (the step asserts a nonzero exit).

use qk_bench::schema::{compare, inject_regression, BenchResult};
use qk_bench::Args;
use std::path::{Path, PathBuf};

fn load(path: &Path) -> BenchResult {
    BenchResult::read(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = Args::from_env();
    let baseline_path = PathBuf::from(
        args.get("baseline")
            .expect("--baseline FILE (committed result) required"),
    );
    let fresh_path = PathBuf::from(args.get("fresh").expect("--fresh FILE (new run) required"));
    let baseline = load(&baseline_path);
    let mut fresh = load(&fresh_path);
    if baseline.meta.bench != fresh.meta.bench {
        eprintln!(
            "bench_compare: baseline is '{}' but fresh is '{}'",
            baseline.meta.bench, fresh.meta.bench
        );
        std::process::exit(2);
    }
    if let Some(raw) = args.get("inject-regression") {
        let factor: f64 = raw.parse().expect("bad --inject-regression");
        inject_regression(&mut fresh, factor);
        eprintln!("[self-test: degraded every gated fresh metric by {factor}]");
    }
    println!(
        "bench_compare: {} (baseline rev {} vs fresh rev {})",
        baseline.meta.bench, baseline.meta.git_rev, fresh.meta.git_rev
    );
    let report = compare(&baseline, &fresh);
    println!("{report}");
    if !report.passed() {
        std::process::exit(1);
    }
}
