//! Truncation-noise study — the paper's stated future work (Conclusion):
//! "more aggressive truncation may be deemed necessary for scalability
//! purposes. In such a situation, analysis of the noise induced by
//! truncation would be necessary."
//!
//! Sweeps the SVD cutoff from the paper's 1e-16 machine-precision
//! setting to aggressively lossy values and reports, per cutoff, the
//! kernel-element error against the noiseless reference, the resource
//! savings (bond dimension, memory, simulation time), and the downstream
//! test AUC.
//!
//! Usage:
//!   cargo run --release -p qk-bench --bin truncation_noise_study -- \
//!     [--scale ci|default|paper] [--samples N] [--features M]
//!     [--distance D] [--gamma G]

use qk_bench::{write_results, Args, Scale};
use qk_circuit::AnsatzConfig;
use qk_core::truncation_study::{run_truncation_study, TruncationStudyConfig};
use qk_data::{generate, prepare_experiment, SyntheticConfig};
use qk_tensor::backend::CpuBackend;

fn main() {
    let args = Args::from_env();
    // Truncation only has bite when bond dimensions grow, so the study
    // defaults to d > 1 (unlike the paper's QML runs at d = 1).
    // Default scale uses d = 2, gamma = 0.3: bond dimensions grow enough
    // for truncation to bite while the model stays clearly above chance,
    // so "AUC unchanged under noise" is a meaningful claim.
    let (samples, features, distance, gamma) = match args.scale() {
        Scale::Ci => (40, 8, 3, 0.5),
        Scale::Default => (160, 12, 2, 0.3),
        Scale::Paper => (400, 50, 6, 0.5),
    };
    let samples = args.get_or("samples", samples);
    let features = args.get_or("features", features);
    let distance = args.get_or("distance", distance);
    let gamma = args.get_or("gamma", gamma);
    let seed = args.get_or("seed", 31);

    println!(
        "Truncation-noise study ({samples} samples, {features} features, d = {distance}, gamma = {gamma})"
    );
    println!("reference run at the paper's 1e-16 cutoff; error columns are vs reference\n");

    // Size the pool so a balanced subsample of `samples` always exists.
    let data = generate(&SyntheticConfig {
        num_features: features.max(12),
        num_illicit: samples,
        num_licit: samples.max(140),
        ..SyntheticConfig::small(seed)
    });
    let split = prepare_experiment(&data, samples, features, seed);
    let config = TruncationStudyConfig {
        ansatz: AnsatzConfig::new(2, distance, gamma),
        cutoffs: vec![1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2],
        c_grid: vec![0.1, 1.0, 4.0],
        tol: 1e-3,
    };
    let backend = CpuBackend::new();
    let study = run_truncation_study(&split, &config, &backend);

    println!(
        "{:>8} | {:>12} {:>12} | {:>8} {:>10} {:>12} | {:>7}",
        "cutoff", "mean |dK|", "max |dK|", "chi", "KiB/MPS", "sim time", "AUC"
    );
    let row = |label: &str, p: &qk_core::TruncationPoint| {
        println!(
            "{label:>8} | {:>12.3e} {:>12.3e} | {:>8.1} {:>10.2} {:>12.3?} | {:>7.3}",
            p.mean_kernel_error,
            p.max_kernel_error,
            p.mean_max_bond,
            p.mean_memory_bytes / 1024.0,
            p.simulation_time,
            p.test_auc
        );
    };
    row("1e-16", &study.reference);
    for p in &study.points {
        row(&format!("{:.0e}", p.cutoff), p);
    }

    if let Some(cutoff) = study.loosest_safe_cutoff(0.01) {
        let p = study.points.iter().find(|p| p.cutoff == cutoff).unwrap();
        println!(
            "\nloosest cutoff within 0.01 AUC of reference: {cutoff:.0e} \
             (chi {:.1} vs {:.1}, sim {:?} vs {:?})",
            p.mean_max_bond,
            study.reference.mean_max_bond,
            p.simulation_time,
            study.reference.simulation_time
        );
    } else {
        println!("\nno swept cutoff stays within 0.01 AUC of the reference");
    }
    write_results("truncation_noise_study", &study);
}
